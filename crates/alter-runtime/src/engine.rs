//! The deterministic fork-join engine (paper §4.1, Figure 4; determinism
//! argument §4.3).
//!
//! Execution proceeds in lock-step rounds. Each round:
//!
//! 1. takes one snapshot of the committed memory state (the analogue of
//!    re-establishing N copy-on-write mappings);
//! 2. assigns up to N chunk-transactions — retries first, then fresh chunks
//!    from the iteration space — to workers in deterministic order;
//! 3. executes them in isolation (in parallel under the threaded driver,
//!    sequentially otherwise — the results are identical by construction);
//! 4. validates and commits in ascending task order (the paper's "ascending
//!    order of child pids"): a task commits iff its sets do not conflict,
//!    under the active [`ConflictPolicy`], with the write sets of tasks that
//!    committed *earlier in the same round* (earlier rounds are already in
//!    the snapshot). Failed tasks re-execute next round; under
//!    [`CommitOrder::InOrder`] a failure also squashes every later task in
//!    the round, which is what makes `RAW + InOrder` equivalent to
//!    sequential execution (Theorem 4.3).
//!
//! Determinism follows exactly as in the paper: isolated executions, a
//! barrier between execution and commit, deterministic commit order, and
//! conflict detection that is a pure function of the (deterministic) sets.

use crate::body::{LoopBody, TxCtx};
use crate::params::{CommitOrder, ConflictPolicy, ExecParams};
use crate::pool::WorkerPool;
use crate::reduction::{RedDelta, RedLocals, RedVars};
use crate::space::IterSpace;
use alter_heap::{
    AccessSet, CommitOps, Heap, IdReservation, MemoryExceeded, ObjId, Snapshot, SnapshotStats,
    TrackMode, Tx, TxBufferPool, TxBuffers, TxEffects, TxStats,
};
use alter_trace::{ConflictKind, Event, Phase, Recorder};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Why a loop execution was aborted.
#[derive(Clone, Debug, PartialEq)]
pub enum RunError {
    /// A loop body panicked; the payload message is preserved.
    Crash(String),
    /// A transaction exceeded the tracked-memory budget — the analogue of
    /// the paper's out-of-memory crashes on very large read sets (§7.1).
    OutOfMemory {
        /// Words tracked when the budget tripped.
        words: u64,
        /// The configured budget.
        budget: u64,
    },
    /// Total executed cost exceeded the work budget — the analogue of the
    /// paper's 10×-sequential timeout (§5).
    WorkBudgetExceeded {
        /// Cost units spent.
        spent: u64,
        /// The configured budget.
        budget: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Crash(msg) => write!(f, "loop body crashed: {msg}"),
            RunError::OutOfMemory { words, budget } => write!(
                f,
                "transaction tracked {words} words, exceeding the {budget}-word budget"
            ),
            RunError::WorkBudgetExceeded { spent, budget } => {
                write!(f, "run spent {spent} cost units, exceeding budget {budget}")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Deterministic cost units charged to each engine phase of a run — the
/// phase profiler's ledger. Every quantity is trace-stable (snapshot slot
/// counts, transaction cost units, the legacy validate-words accounting,
/// committed write/alloc words), so phase costs are identical across drive
/// modes and across the fast-path/incremental A/B knobs, and a run's
/// `PhaseProfile` events are a pure function of program + annotation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseCosts {
    /// Snapshot establishment: one slot-table entry per round per slot
    /// (the trace's `RoundStart.snapshot_slots` figure, independent of the
    /// incremental-snapshot knob).
    pub snapshot: u64,
    /// Transaction execution: declared work plus instrumented words moved,
    /// summed over all attempts.
    pub execute: u64,
    /// Conflict validation under the legacy per-earlier-writer accounting
    /// (the trace's `ValidateOk.validate_words` figure, independent of the
    /// fast-validation knob).
    pub validate: u64,
    /// Commit: words merged back into the heap plus words of fresh
    /// allocations published.
    pub commit: u64,
}

impl PhaseCosts {
    /// Total cost units across the four engine phases.
    pub fn total(&self) -> u64 {
        self.snapshot + self.execute + self.validate + self.commit
    }

    /// Accumulates another run's phase costs.
    pub fn add(&mut self, other: &PhaseCosts) {
        self.snapshot += other.snapshot;
        self.execute += other.execute;
        self.validate += other.validate;
        self.commit += other.commit;
    }

    /// The cost charged to one engine phase (`InferProbe` is the
    /// inference driver's phase, never charged by the engine itself).
    pub fn cost(&self, phase: Phase) -> u64 {
        match phase {
            Phase::Snapshot => self.snapshot,
            Phase::Execute => self.execute,
            Phase::Validate => self.validate,
            Phase::Commit => self.commit,
            Phase::InferProbe => 0,
        }
    }
}

/// Aggregate statistics of one loop execution.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunStats {
    /// Lock-step rounds executed.
    pub rounds: u64,
    /// Transactions executed, including retried and squashed ones.
    pub attempts: u64,
    /// Transactions that committed.
    pub committed: u64,
    /// Loop iterations committed.
    pub iterations: u64,
    /// Operation counters summed over all attempts.
    pub tx_stats: TxStats,
    /// Sum over attempts of tracked read+write set words.
    pub tracked_words: u64,
    /// Largest tracked read+write set of any single attempt.
    pub max_tracked_words: u64,
    /// Words charged to conflict validation under the legacy per-earlier-
    /// writer accounting (`min(earlier writer's words, tracked words)` per
    /// earlier committer probed). This is the quantity the trace's
    /// `ValidateOk` events and the virtual-time cost model consume; it is
    /// computed the same way whether the validation fast path is on or
    /// off, so traces stay byte-identical. The words an exact scan
    /// *actually* compared live in
    /// [`RunStats::exact_scan_words`].
    pub validate_words: u64,
    /// Validations whose fingerprint pre-check could not prove
    /// disjointness and fell through to an exact merge-scan (fast path
    /// only).
    pub fingerprint_hits: u64,
    /// Validations rejected in O(1) by the fingerprint pre-check — no
    /// exact scan ran (fast path only).
    pub fingerprint_rejects: u64,
    /// Transaction buffers and round write-set containers served from the
    /// cross-round recycling pool instead of the allocator.
    pub pool_reuses: u64,
    /// Words actually compared by exact validation merge-scans. With the
    /// fast path on, fingerprint rejects and the cumulative round
    /// write-set shrink this far below [`RunStats::validate_words`].
    pub exact_scan_words: u64,
    /// Slot entries `Arc`-cloned while establishing round snapshots. With
    /// [`ExecParams::incremental_snapshots`] on, only slots dirtied since
    /// the previous round are copied (plus the first round's full build);
    /// with it off every round pays the whole slot table. Trace-visible
    /// snapshot accounting (`RoundStart.snapshot_slots`, the simulator's
    /// per-slot charge) stays on the full-table figure either way.
    pub snapshot_slots_copied: u64,
    /// Snapshot pages carried over untouched from the previous round's
    /// snapshot (incremental snapshots only — the structural-sharing win).
    pub snapshot_pages_reused: u64,
    /// Rounds whose tasks were handed to the persistent [`crate::WorkerPool`]
    /// (zero under the sequential and per-round-scope drivers). Scheduling
    /// telemetry, masked by [`RunStats::modulo_drive_mode`].
    pub pool_round_handoffs: u64,
    /// Tickets handed out by the sequencer — fresh chunk-transactions only;
    /// a re-queued ticket keeps its sequence number and is counted in
    /// [`RunStats::tickets_requeued`] instead. On a clean run
    /// `tickets_issued + tickets_requeued == attempts`. The sequencer is
    /// shared by every drive mode, but the counter is masked by
    /// [`RunStats::modulo_drive_mode`] with the rest of the pipeline
    /// accounting: the determinism contract covers outputs and traces, not
    /// scheduling telemetry.
    pub tickets_issued: u64,
    /// Re-queue occurrences: tickets sent back to the sequencer with a
    /// fresh snapshot epoch after failing validation or being squashed by
    /// an earlier in-order failure. Scheduling telemetry, masked by
    /// [`RunStats::modulo_drive_mode`].
    pub tickets_requeued: u64,
    /// Virtual-time cost units the in-order committer spent waiting for a
    /// ticket's lane to deliver — **never** wall-clock. Under the barrier
    /// model each round charges the slowest lane's execute cost (the
    /// committer cannot start until the barrier opens); under the pipelined
    /// model only the gaps that in-order consumption cannot hide. The model
    /// is selected by `pipelined && pipeline_depth >= 2` — **not** by the
    /// drive mode — so the sequential driver simulates figures identical to
    /// the threaded pipelined driver's. Masked by
    /// [`RunStats::modulo_drive_mode`].
    pub committer_stall_units: u64,
    /// Virtual-time cost units workers spent idle between finishing their
    /// own lane and the round's last commit retiring (same model selection
    /// as [`RunStats::committer_stall_units`]). Masked by
    /// [`RunStats::modulo_drive_mode`].
    pub worker_idle_units: u64,
    /// Words compared by the shard-partitioned word-block validation scans
    /// (`ExecParams::shards > 1` with the fast path on; zero otherwise).
    /// Deterministic for a given shard count and drive-invariant, but — like
    /// the fingerprint counters — it legitimately varies *across* shard
    /// counts, so cross-shard comparisons mask it.
    pub shard_validate_words: u64,
    /// Per-shard commit batches retired: each commit contributes the number
    /// of distinct heap shards its write/alloc/free ops touched (at one
    /// shard this is simply the number of non-empty commits).
    pub shard_commit_batches: u64,
    /// Largest word-block scan any single shard absorbed in one validation —
    /// the load-imbalance ceiling a parallel per-shard validator would see.
    /// Combined with [`RunStats::absorb`] by `max`, not addition.
    pub shard_imbalance_max: u64,
    /// Deterministic cost units charged to each engine phase (the phase
    /// profiler's ledger; identical across drive modes and A/B knobs).
    pub phase_costs: PhaseCosts,
}

impl RunStats {
    /// Attempts that failed validation (the paper's retry count).
    pub fn retries(&self) -> u64 {
        self.attempts - self.committed
    }

    /// Fraction of attempts that failed to commit (Table 4's "Retry Rate").
    pub fn retry_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.retries() as f64 / self.attempts as f64
        }
    }

    /// Average tracked read+write set size per transaction, in words
    /// (Table 4's "RW Set / Trans.").
    pub fn avg_rw_words(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.tracked_words as f64 / self.attempts as f64
        }
    }

    /// Total cost units: declared work plus instrumented words moved. This
    /// is the measure the work budget limits, and the basic currency of the
    /// virtual-time cost model.
    pub fn cost_units(&self) -> u64 {
        self.tx_stats.work + self.tx_stats.read_words + self.tx_stats.write_words
    }

    /// Accumulates another run's statistics (for multi-sweep convergence
    /// loops that call the engine repeatedly).
    pub fn absorb(&mut self, other: &RunStats) {
        self.rounds += other.rounds;
        self.attempts += other.attempts;
        self.committed += other.committed;
        self.iterations += other.iterations;
        self.tx_stats.add(&other.tx_stats);
        self.tracked_words += other.tracked_words;
        self.max_tracked_words = self.max_tracked_words.max(other.max_tracked_words);
        self.validate_words += other.validate_words;
        self.fingerprint_hits += other.fingerprint_hits;
        self.fingerprint_rejects += other.fingerprint_rejects;
        self.pool_reuses += other.pool_reuses;
        self.exact_scan_words += other.exact_scan_words;
        self.snapshot_slots_copied += other.snapshot_slots_copied;
        self.snapshot_pages_reused += other.snapshot_pages_reused;
        self.pool_round_handoffs += other.pool_round_handoffs;
        self.tickets_issued += other.tickets_issued;
        self.tickets_requeued += other.tickets_requeued;
        self.committer_stall_units += other.committer_stall_units;
        self.worker_idle_units += other.worker_idle_units;
        self.shard_validate_words += other.shard_validate_words;
        self.shard_commit_batches += other.shard_commit_batches;
        self.shard_imbalance_max = self.shard_imbalance_max.max(other.shard_imbalance_max);
        self.phase_costs.add(&other.phase_costs);
    }

    /// These statistics with every scheduling-telemetry counter masked to
    /// zero: [`RunStats::pool_round_handoffs`],
    /// [`RunStats::tickets_issued`], [`RunStats::tickets_requeued`],
    /// [`RunStats::committer_stall_units`] and
    /// [`RunStats::worker_idle_units`]. What remains is the quantity the
    /// determinism guarantee promises identical across the sequential,
    /// per-round-scope, persistent-pool and pipelined drivers — and across
    /// `pipeline_depth` settings: semantic work, not how it was driven.
    /// Every counter that a drive-mode or pipeline A/B knob may legally
    /// change belongs in this mask; everything else must be byte-identical
    /// across drivers (the masking contract, unit-tested below).
    pub fn modulo_drive_mode(&self) -> RunStats {
        RunStats {
            pool_round_handoffs: 0,
            tickets_issued: 0,
            tickets_requeued: 0,
            committer_stall_units: 0,
            worker_idle_units: 0,
            ..*self
        }
    }
}

/// Exactly which dependence broke a transaction's validation: the first
/// conflicting word in deterministic (ascending allocation, ascending
/// word) order and the committed writer that owns it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConflictDetail {
    /// Which check failed (RAW vs WAW overlap).
    pub kind: ConflictKind,
    /// Allocation holding the first conflicting word.
    pub obj: ObjId,
    /// Word index within `obj`.
    pub word: u32,
    /// Sequence number of the earlier transaction whose committed write
    /// set owns the word.
    pub winner_seq: u64,
}

/// Per-transaction record handed to [`RoundObserver`]s (the simulator's
/// input).
#[derive(Clone, Debug)]
pub struct TaskReport {
    /// Program-order chunk sequence number.
    pub seq: u64,
    /// Worker the task ran on.
    pub worker: usize,
    /// Iterations in the chunk.
    pub iters: u32,
    /// Whether the task committed this round.
    pub committed: bool,
    /// Whether the task was squashed by an earlier in-order failure (as
    /// opposed to failing validation itself).
    pub squashed: bool,
    /// Operation counters of the execution.
    pub stats: TxStats,
    /// Tracked read-set words.
    pub read_words: u64,
    /// Tracked write-set words.
    pub write_words: u64,
    /// Words this task's validation compared against earlier write sets.
    pub validate_words: u64,
    /// Read operations that actually executed instrumentation (0 when the
    /// conflict policy elides read tracking — the StaleReads fast path).
    pub instr_read_ops: u64,
    /// Write operations that executed instrumentation.
    pub instr_write_ops: u64,
    /// Words materialized in the private copy-on-write overlay (whole
    /// objects, even for one-word writes — the page-copy analogue).
    pub overlay_words: u64,
    /// Words in objects allocated by the task.
    pub alloc_words: u64,
    /// Maximal ranges in the write set (≈ pages dirtied, for the
    /// copy-on-write cost model).
    pub write_ranges: u64,
    /// Why validation failed, when it did. `None` for committed and
    /// squashed tasks (squashed tasks never reached validation).
    pub conflict: Option<ConflictDetail>,
}

/// One lock-step round, as seen by a [`RoundObserver`].
#[derive(Debug)]
pub struct RoundReport<'a> {
    /// Round index within the run (0-based).
    pub round: u64,
    /// The tasks of the round, in commit-validation order.
    pub tasks: &'a [TaskReport],
    /// Slots visible to the round's snapshot (snapshot establishment cost).
    pub snapshot_slots: usize,
}

/// Hook invoked after each round — the virtual-time simulator implements
/// this to charge costs without perturbing execution.
pub trait RoundObserver {
    /// Called once per completed round.
    fn on_round(&mut self, report: &RoundReport<'_>);
}

/// An observer that ignores everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl RoundObserver for NullObserver {
    fn on_round(&mut self, _report: &RoundReport<'_>) {}
}

/// One chunk-transaction in flight: the unit the sequencer issues, a
/// worker lane executes, and the committer retires strictly in `seq`
/// order.
#[derive(Debug)]
struct Ticket {
    /// Program-order chunk sequence number — assigned once at issue time
    /// and kept across re-queues (validation order is `seq` order).
    seq: u64,
    /// Snapshot epoch the ticket executes against, re-stamped each round:
    /// a re-queued ticket always re-executes against a fresh epoch.
    epoch: u64,
    /// Iterations in the chunk.
    iters: Vec<u64>,
}

/// The pipeline's ticket source: monotonic sequence numbers for fresh
/// chunks plus the retry queue for tickets whose validation failed. One
/// sequencer drives every mode — sequential, per-round scope, persistent
/// pool and pipelined — so ticket accounting cannot depend on the driver.
#[derive(Debug, Default)]
struct Sequencer {
    next_seq: u64,
    retry: VecDeque<Ticket>,
}

impl Sequencer {
    /// Assembles the next round: re-queued tickets first (already in
    /// ascending `seq` order), then fresh chunks up to the worker count.
    /// Returns the round's tickets plus how many were freshly issued;
    /// snapshot epochs are stamped by the caller once the round snapshot
    /// exists.
    fn next_round(
        &mut self,
        space: &mut dyn IterSpace,
        workers: usize,
        chunk: usize,
    ) -> (Vec<Ticket>, u64) {
        let mut tickets: Vec<Ticket> = self.retry.drain(..).collect();
        let mut fresh = 0;
        while tickets.len() < workers && !space.is_exhausted() {
            let iters = space.next_chunk(chunk);
            if iters.is_empty() {
                break;
            }
            tickets.push(Ticket {
                seq: self.next_seq,
                epoch: 0,
                iters,
            });
            self.next_seq += 1;
            fresh += 1;
        }
        (tickets, fresh)
    }

    /// Hands a failed ticket back for the next round, where it will execute
    /// against a fresh snapshot epoch.
    fn requeue(&mut self, ticket: Ticket) {
        self.retry.push_back(ticket);
    }
}

enum TaskPanic {
    Oom(MemoryExceeded),
    Crash(String),
}

type TaskOutcome = Result<(TxEffects, Vec<RedDelta>), TaskPanic>;

#[allow(clippy::too_many_arguments)]
fn run_one_task<B: LoopBody + ?Sized>(
    snap: &Snapshot,
    task: &Ticket,
    bufs: TxBuffers,
    worker: usize,
    base: u32,
    params: &ExecParams,
    reds: &RedVars,
    mode: TrackMode,
    body: &B,
) -> TaskOutcome {
    let ids = IdReservation::new(base, worker, params.workers, params.alloc_block);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let tx = Tx::with_buffers(snap, mode, ids, params.budget_words, bufs);
        let locals = RedLocals::for_policy(&params.reductions, reds);
        let mut ctx = TxCtx::new(tx, locals);
        for &i in &task.iters {
            body.run_iter(&mut ctx, i);
        }
        let (tx, locals) = ctx.into_parts();
        (tx.finish(), locals.into_deltas())
    }));
    result.map_err(|payload| {
        if let Some(me) = payload.downcast_ref::<MemoryExceeded>() {
            TaskPanic::Oom(*me)
        } else if let Some(s) = payload.downcast_ref::<&str>() {
            TaskPanic::Crash((*s).to_owned())
        } else if let Some(s) = payload.downcast_ref::<String>() {
            TaskPanic::Crash(s.clone())
        } else {
            TaskPanic::Crash("non-string panic payload".to_owned())
        }
    })
}

/// One round's worth of work shipped to a persistent pool worker. The
/// snapshot and reduction registry ride along as cheap shared handles;
/// everything else is owned by exactly one worker for the round.
struct PoolJob {
    snap: Snapshot,
    ticket: Ticket,
    bufs: TxBuffers,
    base: u32,
    reds: Arc<RedVars>,
}

/// Executes one round on the calling thread or on a fresh per-round
/// `thread::scope` — the pre-pool drive modes, kept as the A/B baseline
/// (`ExecParams::worker_pool = false`) and for the sequential driver.
#[allow(clippy::too_many_arguments)]
fn execute_round_scoped<B: LoopBody>(
    threaded: bool,
    snap: &Snapshot,
    tasks: Vec<Ticket>,
    bufs: Vec<TxBuffers>,
    base: u32,
    params: &ExecParams,
    reds: &RedVars,
    mode: TrackMode,
    body: &B,
) -> Vec<(Ticket, TaskOutcome)> {
    debug_assert_eq!(tasks.len(), bufs.len());
    let outcomes: Vec<TaskOutcome> = if threaded && tasks.len() > 1 {
        std::thread::scope(|scope| {
            let handles: Vec<_> = tasks
                .iter()
                .zip(bufs)
                .enumerate()
                .map(|(worker, (task, buf))| {
                    scope.spawn(move || {
                        run_one_task(snap, task, buf, worker, base, params, reds, mode, body)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread itself must not panic"))
                .collect()
        })
    } else {
        tasks
            .iter()
            .zip(bufs)
            .enumerate()
            .map(|(worker, (task, buf))| {
                run_one_task(snap, task, buf, worker, base, params, reds, mode, body)
            })
            .collect()
    };
    tasks.into_iter().zip(outcomes).collect()
}

fn conflicts_with(policy: ConflictPolicy, effects: &TxEffects, earlier_writes: &AccessSet) -> bool {
    match policy {
        ConflictPolicy::Full => {
            effects.reads.overlaps(earlier_writes) || effects.writes.overlaps(earlier_writes)
        }
        ConflictPolicy::Waw => effects.writes.overlaps(earlier_writes),
        ConflictPolicy::Raw => effects.reads.overlaps(earlier_writes),
        ConflictPolicy::None => false,
    }
}

/// O(1) fingerprint pre-check mirroring [`conflicts_with`]: `false` proves
/// the exact check is `false`; `true` means "cannot rule it out".
fn may_conflict(policy: ConflictPolicy, effects: &TxEffects, earlier_writes: &AccessSet) -> bool {
    match policy {
        ConflictPolicy::Full => {
            effects.reads.may_overlap(earlier_writes) || effects.writes.may_overlap(earlier_writes)
        }
        ConflictPolicy::Waw => effects.writes.may_overlap(earlier_writes),
        ConflictPolicy::Raw => effects.reads.may_overlap(earlier_writes),
        ConflictPolicy::None => false,
    }
}

/// Per-shard slice of [`may_conflict`]: probes only the fingerprint lanes
/// routing to `shard` of `shards`. ORing the result over all shards equals
/// the global pre-check, since a shard's fingerprint is exactly the OR of
/// its lanes.
fn may_conflict_shard(
    policy: ConflictPolicy,
    effects: &TxEffects,
    earlier_writes: &AccessSet,
    shard: usize,
    shards: usize,
) -> bool {
    let merged = earlier_writes.shard_fingerprint(shard, shards);
    match policy {
        ConflictPolicy::Full => {
            effects
                .reads
                .shard_fingerprint(shard, shards)
                .may_intersect(merged)
                || effects
                    .writes
                    .shard_fingerprint(shard, shards)
                    .may_intersect(merged)
        }
        ConflictPolicy::Waw => effects
            .writes
            .shard_fingerprint(shard, shards)
            .may_intersect(merged),
        ConflictPolicy::Raw => effects
            .reads
            .shard_fingerprint(shard, shards)
            .may_intersect(merged),
        ConflictPolicy::None => false,
    }
}

/// Per-shard slice of [`conflicts_with`], run as a word-block scan: exact
/// verdict for the accesses routing to `shard` of `shards`, plus the words
/// the block scan compared (the shard counters' currency). Reads before
/// writes under `FULL`, mirroring validation order.
fn shard_block_conflicts(
    policy: ConflictPolicy,
    effects: &TxEffects,
    earlier_writes: &AccessSet,
    shard: usize,
    shards: usize,
) -> (bool, u64) {
    match policy {
        ConflictPolicy::Full => {
            let (raw, raw_words) =
                effects
                    .reads
                    .shard_block_overlaps(earlier_writes, shard, shards);
            if raw {
                return (true, raw_words);
            }
            let (waw, waw_words) =
                effects
                    .writes
                    .shard_block_overlaps(earlier_writes, shard, shards);
            (waw, raw_words + waw_words)
        }
        ConflictPolicy::Waw => effects
            .writes
            .shard_block_overlaps(earlier_writes, shard, shards),
        ConflictPolicy::Raw => effects
            .reads
            .shard_block_overlaps(earlier_writes, shard, shards),
        ConflictPolicy::None => (false, 0),
    }
}

/// Pinpoints the first conflicting word once [`conflicts_with`] has already
/// said "yes". Reads are checked before writes, matching validation order
/// under `FULL`; within a set the search is deterministic (ascending
/// allocation, then lowest word). Only runs on the conflict path, so the
/// extra scan never taxes a conflict-free round.
fn locate_conflict(
    policy: ConflictPolicy,
    effects: &TxEffects,
    earlier_writes: &AccessSet,
) -> Option<(ConflictKind, ObjId, u32)> {
    let raw = || {
        effects
            .reads
            .first_overlap(earlier_writes)
            .map(|(obj, word)| (ConflictKind::Raw, obj, word))
    };
    let waw = || {
        effects
            .writes
            .first_overlap(earlier_writes)
            .map(|(obj, word)| (ConflictKind::Waw, obj, word))
    };
    match policy {
        ConflictPolicy::Full => raw().or_else(waw),
        ConflictPolicy::Waw => waw(),
        ConflictPolicy::Raw => raw(),
        ConflictPolicy::None => None,
    }
}

/// Drains `effects` into commit operations, leaving its containers empty
/// (but with capacity intact) so they can be recycled through the buffer
/// pool.
pub(crate) fn build_commit_ops(effects: &mut TxEffects, mode: TrackMode) -> CommitOps {
    let mut ops = CommitOps::default();
    if mode == TrackMode::None {
        // No per-range tracking: commit whole private objects, in id order.
        let mut ids: Vec<_> = effects.overlay.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let data = effects.overlay.remove(&id).expect("key just listed");
            let hi = data.len() as u32;
            ops.writes.push((id, 0, hi, Arc::new(data)));
        }
    } else {
        for (id, ranges) in effects.writes.iter_sorted() {
            // Freed objects appear in the write set (a free conflicts like a
            // whole-object write) but have no overlay payload to merge.
            let Some(data) = effects.overlay.remove(&id) else {
                continue;
            };
            let arc = Arc::new(data);
            for (lo, hi) in ranges.iter() {
                ops.writes.push((id, lo, hi, Arc::clone(&arc)));
            }
        }
    }
    ops.allocs = effects
        .allocs
        .drain(..)
        .map(|(id, data)| (id, Arc::new(data)))
        .collect();
    ops.frees = std::mem::take(&mut effects.frees);
    ops.frees.sort_unstable();
    ops
}

/// Runs an annotated loop to completion. This is the engine entry point;
/// prefer the [`crate::run_loop`] / [`crate::LoopBuilder`] wrappers.
///
/// This function only picks the drive mode; the round loop itself lives in
/// [`run_rounds`], parameterized by a round-execution callback so the same
/// (deterministic) scheduling, validation and commit code runs whether a
/// round's tasks execute inline, on a per-round `thread::scope`, or on the
/// persistent [`WorkerPool`] spanning the whole run.
pub(crate) fn run_loop_engine<B: LoopBody>(
    heap: &mut Heap,
    reds: &mut RedVars,
    space: &mut dyn IterSpace,
    params: &ExecParams,
    threaded: bool,
    body: &B,
    observer: &mut dyn RoundObserver,
) -> Result<RunStats, RunError> {
    assert!(params.workers >= 1, "need at least one worker");
    let mode = params.conflict.track_mode();
    if threaded && params.worker_pool && params.workers > 1 {
        // Persistent pool: one thread::scope for the whole run; workers
        // outlive every round and receive per-round jobs over channels.
        // The per-round reduction registry is cloned into the job batch
        // (workers only read it; merges happen on this thread, between
        // rounds) — one small clone per round, same values every driver.
        //
        // `streaming` selects the pipelined handoff: instead of joining the
        // round barrier and then committing, the committer consumes ticket
        // s the moment lane s delivers while later lanes keep executing.
        // Depth 1 deliberately degenerates to the barrier (lock-step
        // baseline); depths above 2 are accepted as headroom — within a
        // round all tickets are dispatched immediately, and cross-round
        // lookahead is impossible because round r+1's snapshot needs every
        // round-r commit.
        let streaming = params.pipelined && params.pipeline_depth >= 2;
        let worker_fn = |worker: usize, job: PoolJob| {
            let outcome = run_one_task(
                &job.snap,
                &job.ticket,
                job.bufs,
                worker,
                job.base,
                params,
                &job.reds,
                mode,
                body,
            );
            (job.ticket, outcome)
        };
        std::thread::scope(|scope| {
            let mut pool = WorkerPool::new(scope, params.workers, &worker_fn);
            // Inner block: `exec` mutably borrows the pool and must die
            // before the handoff counter can be read back.
            let mut result = {
                let mut exec = |snap: &Snapshot,
                                tickets: Vec<Ticket>,
                                bufs: Vec<TxBuffers>,
                                base: u32,
                                reds: Arc<RedVars>,
                                sink: &mut TaskSink<'_>|
                 -> Result<(), RunError> {
                    let jobs: Vec<PoolJob> = tickets
                        .into_iter()
                        .zip(bufs)
                        .map(|(ticket, bufs)| PoolJob {
                            snap: snap.clone(),
                            ticket,
                            bufs,
                            base,
                            reds: Arc::clone(&reds),
                        })
                        .collect();
                    if streaming {
                        // Pipelined committer: strictly in-order consumption
                        // of an out-of-order execution. An early `Err` drops
                        // the stream, which drains the abandoned lanes so
                        // they stay aligned.
                        let mut stream = pool.stream_round(jobs);
                        let mut worker = 0;
                        while let Some((ticket, outcome)) = stream.next_ticket() {
                            sink(worker, ticket, outcome)?;
                            worker += 1;
                        }
                    } else {
                        for (worker, (ticket, outcome)) in
                            pool.run_round(jobs).into_iter().enumerate()
                        {
                            sink(worker, ticket, outcome)?;
                        }
                    }
                    Ok(())
                };
                run_rounds(heap, reds, space, params, &mut exec, observer)
            };
            if let Ok(stats) = &mut result {
                stats.pool_round_handoffs = pool.round_handoffs();
            }
            result
            // The pool drops here, closing the job channels, so the scope's
            // implicit join finds every worker already draining out.
        })
    } else {
        let mut exec = |snap: &Snapshot,
                        tickets: Vec<Ticket>,
                        bufs: Vec<TxBuffers>,
                        base: u32,
                        reds: Arc<RedVars>,
                        sink: &mut TaskSink<'_>|
         -> Result<(), RunError> {
            let results = execute_round_scoped(
                threaded, snap, tickets, bufs, base, params, &reds, mode, body,
            );
            for (worker, (ticket, outcome)) in results.into_iter().enumerate() {
                sink(worker, ticket, outcome)?;
            }
            Ok(())
        };
        run_rounds(heap, reds, space, params, &mut exec, observer)
    }
}

/// The committer's per-ticket consumer: validates and commits (or
/// re-queues) one ticket. [`run_rounds`] builds one sink per round over its
/// own mutable state; drivers must feed it **strictly in ticket order** —
/// that in-order handoff, not a barrier, is the only ordering the
/// determinism argument needs. An `Err` aborts the round (and the run).
type TaskSink<'a> = dyn FnMut(usize, Ticket, TaskOutcome) -> Result<(), RunError> + 'a;

/// Per-round execution callback of [`run_rounds`]: given the round's
/// snapshot, tickets, lent buffers, base worker index, and a shared handle
/// on the reduction registry, runs every ticket and feeds each `(worker,
/// ticket, outcome)` to the sink in ticket order. Barrier drivers run the
/// whole round first and then feed; the pipelined driver feeds each ticket
/// as its lane delivers.
type RoundExec<'a> = dyn FnMut(
        &Snapshot,
        Vec<Ticket>,
        Vec<TxBuffers>,
        u32,
        Arc<RedVars>,
        &mut TaskSink<'_>,
    ) -> Result<(), RunError>
    + 'a;

/// The round loop: schedule, snapshot, execute (via `exec`), validate,
/// commit, observe — everything about a run that is independent of how a
/// round's tasks are driven.
fn run_rounds(
    heap: &mut Heap,
    reds: &mut RedVars,
    space: &mut dyn IterSpace,
    params: &ExecParams,
    exec: &mut RoundExec<'_>,
    observer: &mut dyn RoundObserver,
) -> Result<RunStats, RunError> {
    let mode = params.conflict.track_mode();
    // Partition the heap to the requested shard count before the first
    // round snapshot. A no-op when already there (convergence loops call
    // run_rounds repeatedly), so the snapshot cache survives across runs
    // exactly as before; an actual re-partition drops the cache and the
    // next incremental snapshot pays one full build — the same cost a
    // fresh heap's first snapshot pays at any shard count.
    heap.set_shards(params.shards);
    let nshards = heap.shard_count();
    // Resolve the recorder once: `None` here means every emission site below
    // is one predicted-not-taken branch and constructs nothing.
    let rec: Option<&dyn Recorder> = params.recorder.as_deref().filter(|r| r.is_enabled());
    // Wall-clock phase mirror: `None` (the default) means no `Instant` is
    // ever taken; the deterministic cost-unit accounting below runs either
    // way and never reads the clock.
    let wall = params.wall_profile.as_deref();
    let mut stats = RunStats::default();
    let mut sequencer = Sequencer::default();
    let mut reports: Vec<TaskReport> = Vec::new();
    // Cross-round recycling (tentpole of the validation fast path): the pool
    // lends each task its transaction buffers and takes them back — emptied,
    // capacity intact — once the task's effects are consumed. It lives on
    // this coordinating thread and is only touched between rounds, so
    // recycling cannot perturb determinism: only capacity is reused, never
    // contents.
    let mut pool = TxBufferPool::new();
    // Committed write sets of the current round, one entry per committer
    // (for conflict attribution), plus their running union. The union's
    // fingerprint lets validation reject a non-overlapping task in O(1) and
    // compare against one merged set — instead of scanning every earlier
    // writer — when it cannot.
    let mut round_writes: Vec<(u64, AccessSet)> = Vec::new();
    let mut merged_writes = AccessSet::new();

    loop {
        // Assemble the round from the sequencer: re-queued tickets first
        // (lowest seq first — they are already in order), then fresh
        // chunks.
        let (mut tickets, fresh) = sequencer.next_round(space, params.workers, params.chunk);
        if tickets.is_empty() {
            break;
        }
        stats.tickets_issued += fresh;

        // Establish the round snapshot. Incrementally patching the heap's
        // persistent page table yields a bit-identical view; only the
        // construction-cost counters can tell the two paths apart.
        let wall_t = wall.map(|_| Instant::now());
        let (snap, snap_stats) = if params.incremental_snapshots {
            heap.snapshot_incremental()
        } else {
            let snap = heap.snapshot_round();
            let full = SnapshotStats {
                slots_copied: snap.slot_count() as u64,
                pages_reused: 0,
            };
            (snap, full)
        };
        if let (Some(w), Some(t)) = (wall, wall_t) {
            w.add(Phase::Snapshot, t.elapsed().as_secs_f64());
        }
        stats.snapshot_slots_copied += snap_stats.slots_copied;
        stats.snapshot_pages_reused += snap_stats.pages_reused;
        // Both snapshot flavours bumped the heap's monotonic snapshot
        // epoch; stamp it onto the round's tickets. A re-queued ticket is
        // re-stamped here — it re-executes against the fresh epoch its
        // `TicketRequeued` event promised.
        let epoch = heap.snapshot_epoch();
        for t in &mut tickets {
            t.epoch = epoch;
        }
        // Phase ledger for this round. Snapshot cost is the trace's
        // `snapshot_slots` figure (one charge per slot in the round's view),
        // deliberately not `slots_copied`, which varies with the
        // incremental-snapshot knob.
        let round_snapshot = snap.slot_count() as u64;
        let mut round_execute: u64 = 0;
        let mut round_validate: u64 = 0;
        let mut round_commit: u64 = 0;
        let base = heap.high_water();
        if let Some(rec) = rec {
            rec.record(Event::RoundStart {
                round: stats.rounds,
                tasks: tickets.len() as u32,
                snapshot_slots: snap.slot_count() as u64,
            });
            for (worker, task) in tickets.iter().enumerate() {
                rec.record(Event::TaskStart {
                    seq: task.seq,
                    worker: worker as u32,
                    iters: task.iters.len() as u32,
                });
                if params.trace_tickets {
                    rec.record(Event::TicketIssued {
                        seq: task.seq,
                        epoch: task.epoch,
                        iters: task.iters.len() as u32,
                    });
                }
            }
        }
        let bufs: Vec<TxBuffers> = tickets.iter().map(|_| pool.acquire()).collect();
        // Workers read the reduction registry through a shared handle;
        // merges happen in the sink below, on this thread, against `reds`
        // itself. The handle's values are identical under every driver.
        let exec_reds = Arc::new(reds.clone());

        // Validate and commit strictly in ticket order. The sink below is
        // the single committer every driver feeds — barrier drivers once
        // the whole round has joined, the pipelined driver ticket by ticket
        // as lanes deliver. Each committed write set is remembered with its
        // owner's sequence number so a later conflict can name the
        // transaction it lost to.
        let mut squash = false;
        let mut squashed_by: u64 = 0;
        // Out-of-band wall bookkeeping: under the pipelined driver the
        // committer's validate/commit spans land *inside* the exec span, so
        // the sink measures them and the remainder approximates execution.
        let mut sink_secs = 0.0f64;
        reports.clear();
        let round_wall_t = wall.map(|_| Instant::now());
        let mut sink =
            |worker: usize, task: Ticket, outcome: TaskOutcome| -> Result<(), RunError> {
                let (mut effects, deltas) = match outcome {
                    Ok(v) => v,
                    Err(TaskPanic::Oom(me)) => {
                        if let Some(rec) = rec {
                            rec.record(Event::Oom {
                                words: me.words,
                                budget: me.budget,
                            });
                        }
                        return Err(RunError::OutOfMemory {
                            words: me.words,
                            budget: me.budget,
                        });
                    }
                    Err(TaskPanic::Crash(msg)) => {
                        if let Some(rec) = rec {
                            rec.record(Event::Crash {
                                message: msg.clone(),
                            });
                        }
                        return Err(RunError::Crash(msg));
                    }
                };

                stats.attempts += 1;
                stats.tx_stats.add(&effects.stats);
                round_execute +=
                    effects.stats.work + effects.stats.read_words + effects.stats.write_words;
                let tracked = effects.reads.words() + effects.writes.words();
                stats.tracked_words += tracked;
                stats.max_tracked_words = stats.max_tracked_words.max(tracked);

                let mut validate_words = 0;
                let mut conflict: Option<ConflictDetail> = None;
                let wall_t = wall.map(|_| Instant::now());
                if !squash && params.fast_validation {
                    // Fast path: one fingerprint test against the union of the
                    // round's committed write sets. A reject proves disjointness
                    // from every earlier writer with no scan at all; a hit runs
                    // one exact scan against the merged set instead of one per
                    // earlier writer. With a sharded heap the same test is
                    // decomposed by shard: each shard's fingerprint slice is
                    // probed independently, and only shards that cannot be
                    // rejected run a word-block scan over their slice of the
                    // merged set. Shards partition the id space, so the OR of
                    // the per-shard verdicts equals the global verdict — and
                    // the per-shard scans touch disjoint state, which is what
                    // lets a partitioned committer run them concurrently.
                    let conflicted =
                        if round_writes.is_empty() || params.conflict == ConflictPolicy::None {
                            false
                        } else if nshards > 1 {
                            let mut conflicted = false;
                            let mut any_hit = false;
                            for shard in 0..nshards {
                                if !may_conflict_shard(
                                    params.conflict,
                                    &effects,
                                    &merged_writes,
                                    shard,
                                    nshards,
                                ) {
                                    continue;
                                }
                                any_hit = true;
                                let (hit, scanned) = shard_block_conflicts(
                                    params.conflict,
                                    &effects,
                                    &merged_writes,
                                    shard,
                                    nshards,
                                );
                                stats.exact_scan_words += scanned;
                                stats.shard_validate_words += scanned;
                                stats.shard_imbalance_max = stats.shard_imbalance_max.max(scanned);
                                if hit {
                                    conflicted = true;
                                    break;
                                }
                            }
                            if any_hit {
                                stats.fingerprint_hits += 1;
                            } else {
                                stats.fingerprint_rejects += 1;
                            }
                            conflicted
                        } else if may_conflict(params.conflict, &effects, &merged_writes) {
                            stats.fingerprint_hits += 1;
                            stats.exact_scan_words += merged_writes.words().min(tracked);
                            conflicts_with(params.conflict, &effects, &merged_writes)
                        } else {
                            stats.fingerprint_rejects += 1;
                            false
                        };
                    // Attribution runs only on the conflict path: walk the
                    // per-writer log in commit order to name the first earlier
                    // transaction this one lost to — the same writer and word
                    // the per-writer scan would have reported.
                    let mut winner_index = round_writes.len();
                    if conflicted {
                        for (i, (winner_seq, earlier)) in round_writes.iter().enumerate() {
                            stats.exact_scan_words += earlier.words().min(tracked);
                            if conflicts_with(params.conflict, &effects, earlier) {
                                let (kind, obj, word) =
                                    locate_conflict(params.conflict, &effects, earlier)
                                        .expect("overlap test and locate must agree");
                                conflict = Some(ConflictDetail {
                                    kind,
                                    obj,
                                    word,
                                    winner_seq: *winner_seq,
                                });
                                winner_index = i;
                                break;
                            }
                        }
                        debug_assert!(
                            conflict.is_some(),
                            "a conflict with the union names some individual writer"
                        );
                    }
                    // Trace-visible accounting stays on the legacy per-writer
                    // formula — the words the exact scan *would* have compared,
                    // up to and including the conflicting writer — so event
                    // payloads (and trace hashes) are identical with the fast
                    // path on or off. `words()` is O(1), so this costs nothing.
                    for (_, earlier) in round_writes.iter().take(winner_index + 1) {
                        validate_words += earlier.words().min(tracked);
                    }
                } else if !squash {
                    for (winner_seq, earlier) in &round_writes {
                        validate_words += earlier.words().min(tracked);
                        if params.conflict != ConflictPolicy::None {
                            stats.exact_scan_words += earlier.words().min(tracked);
                        }
                        if conflicts_with(params.conflict, &effects, earlier) {
                            let (kind, obj, word) =
                                locate_conflict(params.conflict, &effects, earlier)
                                    .expect("overlap test and locate must agree");
                            conflict = Some(ConflictDetail {
                                kind,
                                obj,
                                word,
                                winner_seq: *winner_seq,
                            });
                            break;
                        }
                    }
                }
                if let (Some(w), Some(t)) = (wall, wall_t) {
                    let dt = t.elapsed().as_secs_f64();
                    sink_secs += dt;
                    w.add(Phase::Validate, dt);
                }
                stats.validate_words += validate_words;
                round_validate += validate_words;

                let mut report = TaskReport {
                    seq: task.seq,
                    worker,
                    iters: task.iters.len() as u32,
                    committed: false,
                    squashed: squash,
                    stats: effects.stats,
                    read_words: effects.reads.words(),
                    write_words: effects.writes.words(),
                    validate_words,
                    instr_read_ops: if mode.tracks_reads() {
                        effects.stats.read_ops
                    } else {
                        0
                    },
                    instr_write_ops: if mode.tracks_writes() {
                        effects.stats.write_ops
                    } else {
                        0
                    },
                    overlay_words: effects.overlay.values().map(|o| o.len() as u64).sum(),
                    alloc_words: effects.allocs.iter().map(|(_, o)| o.len() as u64).sum(),
                    write_ranges: effects.writes.range_count() as u64,
                    conflict,
                };

                // Opt-in sanitizer payload: the full tracked sets, emitted just
                // before the verdict event they justify.
                if params.record_sets {
                    if let Some(rec) = rec {
                        rec.record(Event::TaskSets {
                            seq: task.seq,
                            reads: alter_trace::render_set(&effects.reads),
                            writes: alter_trace::render_set(&effects.writes),
                        });
                    }
                }

                if squash || conflict.is_some() {
                    if let Some(rec) = rec {
                        if let Some(c) = conflict {
                            rec.record(Event::ValidateConflict {
                                seq: task.seq,
                                kind: c.kind,
                                obj: c.obj,
                                word: c.word,
                                winner_seq: c.winner_seq,
                            });
                        } else {
                            rec.record(Event::Squash {
                                seq: task.seq,
                                by_seq: squashed_by,
                            });
                        }
                        if params.trace_tickets {
                            // The re-queue executes against the next round's
                            // snapshot — announce the fresh epoch it will get.
                            rec.record(Event::TicketRequeued {
                                seq: task.seq,
                                epoch: task.epoch + 1,
                            });
                        }
                    }
                    if conflict.is_some() && params.order == CommitOrder::InOrder {
                        squash = true;
                        squashed_by = task.seq;
                    }
                    stats.tickets_requeued += 1;
                    sequencer.requeue(task);
                    pool.release(TxBuffers {
                        overlay: std::mem::take(&mut effects.overlay),
                        reads: std::mem::take(&mut effects.reads),
                        writes: std::mem::take(&mut effects.writes),
                    });
                } else {
                    report.committed = true;
                    stats.committed += 1;
                    stats.iterations += task.iters.len() as u64;
                    round_commit += report.write_words + report.alloc_words;
                    let wall_t = wall.map(|_| Instant::now());
                    if let Some(rec) = rec {
                        rec.record(Event::ValidateOk {
                            seq: task.seq,
                            validate_words,
                        });
                        rec.record(Event::Commit {
                            seq: task.seq,
                            read_words: report.read_words,
                            write_words: report.write_words,
                            allocs: effects.allocs.len() as u32,
                            frees: effects.frees.len() as u32,
                        });
                        if params.trace_tickets {
                            rec.record(Event::TicketValidated {
                                seq: task.seq,
                                epoch: task.epoch,
                            });
                        }
                    }
                    // A type-mismatched reduction (e.g. a boolean operator on a
                    // float variable) is an invalid annotation; report it as a
                    // crash of the candidate program rather than unwinding.
                    let merged = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        for d in &deltas {
                            reds.merge(d);
                        }
                    }));
                    if let Err(payload) = merged {
                        let msg = payload
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                            .unwrap_or_else(|| "reduction merge failed".to_owned());
                        if let Some(rec) = rec {
                            rec.record(Event::Crash {
                                message: msg.clone(),
                            });
                        }
                        return Err(RunError::Crash(msg));
                    }
                    if let Some(rec) = rec {
                        for d in &deltas {
                            rec.record(Event::ReductionMerge {
                                seq: task.seq,
                                var: d.var.index() as u32,
                                op: d.op.as_str(),
                            });
                        }
                    }
                    stats.shard_commit_batches +=
                        u64::from(heap.apply_commit(build_commit_ops(&mut effects, mode)));
                    // The committed write set moves into the round log (no
                    // clone — `build_commit_ops` only borrowed it); the rest of
                    // the transaction's buffers go back to the pool, along with
                    // a recycled set to keep the returned buffers complete.
                    let writes = std::mem::replace(&mut effects.writes, pool.acquire_set());
                    merged_writes.union_with(&writes);
                    round_writes.push((task.seq, writes));
                    pool.release(TxBuffers {
                        overlay: std::mem::take(&mut effects.overlay),
                        reads: std::mem::take(&mut effects.reads),
                        writes: std::mem::take(&mut effects.writes),
                    });
                    if let (Some(w), Some(t)) = (wall, wall_t) {
                        let dt = t.elapsed().as_secs_f64();
                        sink_secs += dt;
                        w.add(Phase::Commit, dt);
                    }
                }
                reports.push(report);
                Ok(())
            };
        exec(&snap, tickets, bufs, base, exec_reds, &mut sink)?;
        if let (Some(w), Some(t)) = (wall, round_wall_t) {
            w.add(
                Phase::Execute,
                (t.elapsed().as_secs_f64() - sink_secs).max(0.0),
            );
        }

        // Deterministic virtual-time pipeline accounting — never wall
        // clock, computed from the same per-task counters every driver
        // reports identically, so the sequential driver *simulates* exactly
        // the figures the threaded drivers would measure. Executing ticket
        // s costs its declared work plus instrumented words; retiring it
        // costs its validation words plus, if it committed, the words it
        // published. The model — not the drive mode — follows the pipeline
        // knobs, and the phase-cost ledger above is untouched by it.
        let streaming = params.pipelined && params.pipeline_depth >= 2;
        let exec_cost = |r: &TaskReport| r.stats.work + r.stats.read_words + r.stats.write_words;
        let retire_cost = |r: &TaskReport| {
            r.validate_words
                + if r.committed {
                    r.write_words + r.alloc_words
                } else {
                    0
                }
        };
        if !reports.is_empty() {
            let mut stall: u64 = 0;
            let end = if streaming {
                // Pipelined: every lane starts at t=0 and delivers at its
                // execute cost; the committer retires tickets in order,
                // stalling only where in-order consumption cannot hide a
                // late lane behind earlier retire work.
                let mut fin: u64 = 0;
                for (s, r) in reports.iter().enumerate() {
                    let done = exec_cost(r);
                    stall += if s == 0 {
                        done
                    } else {
                        done.saturating_sub(fin)
                    };
                    fin = fin.max(done) + retire_cost(r);
                }
                fin
            } else {
                // Barrier: the committer cannot start until the slowest
                // lane joins, then retires everything back to back.
                let slowest = reports.iter().map(&exec_cost).max().unwrap_or(0);
                stall = slowest;
                slowest + reports.iter().map(retire_cost).sum::<u64>()
            };
            stats.committer_stall_units += stall;
            for r in &reports {
                stats.worker_idle_units += end.saturating_sub(exec_cost(r));
            }
        }

        // Close the round's phase ledger: fold it into the run statistics
        // (always — the adds are free and drive-invariant) and, for opted-in
        // profiling consumers, emit one `PhaseProfile` event per phase after
        // the round's task events.
        stats.phase_costs.snapshot += round_snapshot;
        stats.phase_costs.execute += round_execute;
        stats.phase_costs.validate += round_validate;
        stats.phase_costs.commit += round_commit;
        if params.profile_phases {
            if let Some(rec) = rec {
                for (phase, cost) in [
                    (Phase::Snapshot, round_snapshot),
                    (Phase::Execute, round_execute),
                    (Phase::Validate, round_validate),
                    (Phase::Commit, round_commit),
                ] {
                    rec.record(Event::PhaseProfile {
                        round: stats.rounds,
                        phase,
                        cost,
                    });
                }
            }
        }

        // The round's write log is only meaningful within the round (earlier
        // rounds are already visible in the next snapshot): recycle its sets
        // and reset the running union.
        for (_, set) in round_writes.drain(..) {
            pool.release_set(set);
        }
        merged_writes.clear();

        stats.rounds += 1;
        observer.on_round(&RoundReport {
            round: stats.rounds - 1,
            tasks: &reports,
            snapshot_slots: snap.slot_count(),
        });

        if let Some(budget) = params.work_budget {
            let spent = stats.cost_units();
            if spent > budget {
                if let Some(rec) = rec {
                    rec.record(Event::WorkBudgetExceeded { spent, budget });
                }
                return Err(RunError::WorkBudgetExceeded { spent, budget });
            }
        }
    }
    stats.pool_reuses = pool.reuses();
    if let Some(rec) = rec {
        rec.record(Event::RunEnd {
            rounds: stats.rounds,
            attempts: stats.attempts,
            committed: stats.committed,
        });
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::RedOp;
    use crate::reduction::RedVal;
    use crate::space::RangeSpace;
    use alter_heap::ObjData;

    fn params(
        workers: usize,
        chunk: usize,
        conflict: ConflictPolicy,
        order: CommitOrder,
    ) -> ExecParams {
        let mut p = ExecParams::new(workers, chunk);
        p.conflict = conflict;
        p.order = order;
        p
    }

    /// The masking contract of [`RunStats::modulo_drive_mode`], pinned as a
    /// test so a future counter cannot silently dodge it: with every field
    /// non-zero, masking zeroes exactly the five scheduling-telemetry
    /// counters — `pool_round_handoffs`, `tickets_issued`,
    /// `tickets_requeued`, `committer_stall_units`, `worker_idle_units` —
    /// and passes every other field through untouched.
    #[test]
    fn modulo_drive_mode_masks_exactly_the_schedule_counters() {
        let full = RunStats {
            rounds: 1,
            attempts: 2,
            committed: 3,
            iterations: 4,
            tx_stats: TxStats {
                read_ops: 5,
                read_words: 6,
                write_ops: 7,
                write_words: 8,
                work: 9,
                traffic_words: 10,
                allocs: 11,
                frees: 12,
            },
            tracked_words: 13,
            max_tracked_words: 14,
            validate_words: 15,
            fingerprint_hits: 16,
            fingerprint_rejects: 17,
            pool_reuses: 18,
            exact_scan_words: 19,
            snapshot_slots_copied: 20,
            snapshot_pages_reused: 21,
            pool_round_handoffs: 22,
            tickets_issued: 23,
            tickets_requeued: 24,
            committer_stall_units: 25,
            worker_idle_units: 26,
            shard_validate_words: 31,
            shard_commit_batches: 32,
            shard_imbalance_max: 33,
            phase_costs: PhaseCosts {
                snapshot: 27,
                execute: 28,
                validate: 29,
                commit: 30,
            },
        };
        let masked = full.modulo_drive_mode();
        // The masked counters are zeroed...
        assert_eq!(masked.pool_round_handoffs, 0);
        assert_eq!(masked.tickets_issued, 0);
        assert_eq!(masked.tickets_requeued, 0);
        assert_eq!(masked.committer_stall_units, 0);
        assert_eq!(masked.worker_idle_units, 0);
        // ...and nothing else moved: re-zeroing the same five fields on the
        // original must reproduce the masked value exactly.
        let expect = RunStats {
            pool_round_handoffs: 0,
            tickets_issued: 0,
            tickets_requeued: 0,
            committer_stall_units: 0,
            worker_idle_units: 0,
            ..full
        };
        assert_eq!(masked, expect);
        // Masking is idempotent.
        assert_eq!(masked.modulo_drive_mode(), masked);
    }

    /// A DOALL loop: every iteration writes its own element.
    #[test]
    fn doall_loop_commits_everything_first_try() {
        for threaded in [false, true] {
            let mut heap = Heap::new();
            let xs = heap.alloc(ObjData::zeros_f64(16));
            let mut reds = RedVars::new();
            let p = params(4, 2, ConflictPolicy::None, CommitOrder::OutOfOrder);
            let stats = run_loop_engine(
                &mut heap,
                &mut reds,
                &mut RangeSpace::new(0, 16),
                &p,
                threaded,
                &|ctx: &mut TxCtx<'_>, i: u64| {
                    ctx.tx.write_f64(xs, i as usize, i as f64 * 2.0);
                },
                &mut NullObserver,
            )
            .unwrap();
            assert_eq!(stats.committed, 8, "16 iters / cf 2");
            assert_eq!(stats.iterations, 16);
            assert_eq!(stats.retries(), 0);
            assert_eq!(stats.rounds, 2, "8 chunks / 4 workers");
            let expect: Vec<f64> = (0..16).map(|i| i as f64 * 2.0).collect();
            assert_eq!(heap.get(xs).f64s(), &expect[..], "threaded={threaded}");
        }
    }

    /// All iterations RMW one counter: WAW conflicts force serialization,
    /// one commit per round, but the result equals the sequential sum.
    #[test]
    fn waw_conflicts_serialize_but_preserve_sum() {
        let mut heap = Heap::new();
        let counter = heap.alloc(ObjData::scalar_i64(0));
        let mut reds = RedVars::new();
        let p = params(4, 1, ConflictPolicy::Waw, CommitOrder::OutOfOrder);
        let stats = run_loop_engine(
            &mut heap,
            &mut reds,
            &mut RangeSpace::new(0, 8),
            &p,
            false,
            &|ctx: &mut TxCtx<'_>, _i| {
                let v = ctx.tx.read_i64(counter, 0);
                ctx.tx.write_i64(counter, 0, v + 1);
            },
            &mut NullObserver,
        )
        .unwrap();
        assert_eq!(heap.get(counter).i64s()[0], 8);
        assert!(stats.retries() > 0, "conflicts must have occurred");
        assert_eq!(stats.committed, 8);
    }

    /// The heap shard count is a pure layout knob: committed state,
    /// verdicts and the trace-visible validation accounting are identical
    /// at every shard count; only the scan-economics counters move.
    #[test]
    fn shard_count_is_invisible_to_verdicts_and_outputs() {
        let run = |shards: usize, conflict: ConflictPolicy| {
            let mut heap = Heap::new();
            // Spread writes across several pages so shards > 1 actually
            // split the access sets.
            let xs: Vec<_> = (0..4)
                .map(|_| {
                    let id = heap.alloc(ObjData::zeros_i64(64));
                    for _ in 0..63 {
                        heap.alloc(ObjData::scalar_i64(0));
                    }
                    id
                })
                .collect();
            let counter = heap.alloc(ObjData::scalar_i64(0));
            let mut reds = RedVars::new();
            let mut p = params(4, 1, conflict, CommitOrder::OutOfOrder);
            p.shards = shards;
            let stats = run_loop_engine(
                &mut heap,
                &mut reds,
                &mut RangeSpace::new(0, 16),
                &p,
                false,
                &|ctx: &mut TxCtx<'_>, i| {
                    let x = xs[(i % 4) as usize];
                    let v = ctx.tx.read_i64(x, (i / 4) as usize);
                    ctx.tx.write_i64(x, (i / 4) as usize, v + 1);
                    // Every iteration also bumps one shared counter,
                    // guaranteeing real conflicts to validate.
                    let c = ctx.tx.read_i64(counter, 0);
                    ctx.tx.write_i64(counter, 0, c + 1);
                },
                &mut NullObserver,
            )
            .unwrap();
            (heap.digest(), stats)
        };
        for conflict in [ConflictPolicy::Waw, ConflictPolicy::Full] {
            let (digest1, base) = run(1, conflict);
            assert_eq!(base.shard_validate_words, 0, "unsharded: no block scans");
            for shards in [4usize, 16] {
                let (digest, stats) = run(shards, conflict);
                assert_eq!(digest, digest1, "{conflict}/{shards}: same final heap");
                assert_eq!(stats.committed, base.committed);
                assert_eq!(stats.retries(), base.retries());
                assert_eq!(stats.rounds, base.rounds);
                assert_eq!(
                    stats.validate_words, base.validate_words,
                    "{conflict}/{shards}: trace-visible accounting is invariant"
                );
                assert_eq!(stats.tracked_words, base.tracked_words);
                assert!(
                    stats.shard_commit_batches >= base.shard_commit_batches,
                    "{conflict}/{shards}: commits split into per-shard batches"
                );
                assert!(
                    stats.shard_imbalance_max <= stats.shard_validate_words,
                    "imbalance ceiling cannot exceed the total"
                );
            }
        }
    }

    /// Under TLS (RAW + InOrder) the result must match sequential semantics
    /// even for an order-sensitive loop.
    #[test]
    fn tls_matches_sequential_semantics() {
        // x[i] = x[i-1] + 1 — a tight dependence chain.
        let run = |p: &ExecParams| {
            let mut heap = Heap::new();
            let xs = heap.alloc(ObjData::zeros_i64(12));
            let mut reds = RedVars::new();
            let stats = run_loop_engine(
                &mut heap,
                &mut reds,
                &mut RangeSpace::new(1, 12),
                p,
                false,
                &|ctx: &mut TxCtx<'_>, i| {
                    let prev = ctx.tx.read_i64(xs, i as usize - 1);
                    ctx.tx.write_i64(xs, i as usize, prev + 1);
                },
                &mut NullObserver,
            )
            .unwrap();
            (heap.get(xs).i64s().to_vec(), stats)
        };
        let p = params(4, 1, ConflictPolicy::Raw, CommitOrder::InOrder);
        let (xs, stats) = run(&p);
        let expect: Vec<i64> = (0..12).collect();
        assert_eq!(xs, expect);
        assert!(
            stats.retries() > 0,
            "speculation must have failed sometimes"
        );
    }

    /// StaleReads (WAW) lets the same dependence chain commit in one round
    /// with broken RAW dependences — values are stale but writes disjoint.
    #[test]
    fn stalereads_breaks_raw_dependences_without_retries() {
        let mut heap = Heap::new();
        let xs = heap.alloc(ObjData::zeros_i64(8));
        let mut reds = RedVars::new();
        let p = params(4, 2, ConflictPolicy::Waw, CommitOrder::OutOfOrder);
        let stats = run_loop_engine(
            &mut heap,
            &mut reds,
            &mut RangeSpace::new(1, 8),
            &p,
            false,
            &|ctx: &mut TxCtx<'_>, i| {
                let prev = ctx.tx.read_i64(xs, i as usize - 1);
                ctx.tx.write_i64(xs, i as usize, prev + 1);
            },
            &mut NullObserver,
        )
        .unwrap();
        assert_eq!(
            stats.retries(),
            0,
            "disjoint writes: snapshot isolation is conflict-free"
        );
        // Stale reads: each chunk saw zeros for the previous chunk's cells.
        let xs = heap.get(xs).i64s().to_vec();
        assert_ne!(
            xs,
            (0..8).collect::<Vec<i64>>(),
            "sequential chain must be broken"
        );
        assert_eq!(xs[1], 1, "first iteration read committed x[0]=0");
    }

    /// Reductions merge in deterministic commit order and match the serial
    /// fold.
    #[test]
    fn reduction_sums_match_serial_fold() {
        for threaded in [false, true] {
            let mut heap = Heap::new();
            let _pad = heap.alloc(ObjData::scalar_i64(0));
            let mut reds = RedVars::new();
            let delta = reds.declare("delta", RedVal::F64(0.0));
            let mut p = params(3, 4, ConflictPolicy::Waw, CommitOrder::OutOfOrder);
            p.reductions = vec![(delta, RedOp::Add)];
            let stats = run_loop_engine(
                &mut heap,
                &mut reds,
                &mut RangeSpace::new(0, 100),
                &p,
                threaded,
                &|ctx: &mut TxCtx<'_>, i| {
                    ctx.red_add(delta, i as f64);
                },
                &mut NullObserver,
            )
            .unwrap();
            assert_eq!(reds.get(delta).as_f64(), 4950.0);
            assert_eq!(stats.retries(), 0, "reduction variables never conflict");
        }
    }

    /// The engine reports crashes as RunError::Crash with the message.
    #[test]
    fn body_panic_becomes_crash_error() {
        crate::quiet::quiet_panics(|| {
            let mut heap = Heap::new();
            let mut reds = RedVars::new();
            let p = params(2, 1, ConflictPolicy::None, CommitOrder::OutOfOrder);
            let err = run_loop_engine(
                &mut heap,
                &mut reds,
                &mut RangeSpace::new(0, 4),
                &p,
                false,
                &|_ctx: &mut TxCtx<'_>, i| {
                    if i == 2 {
                        panic!("iteration exploded");
                    }
                },
                &mut NullObserver,
            )
            .unwrap_err();
            assert!(matches!(err, RunError::Crash(ref m) if m.contains("exploded")));
        });
    }

    /// Tracked-memory budget violations become OutOfMemory.
    #[test]
    fn memory_budget_becomes_oom_error() {
        crate::quiet::quiet_panics(|| {
            let mut heap = Heap::new();
            let big = heap.alloc(ObjData::zeros_f64(1000));
            let mut reds = RedVars::new();
            let mut p = params(2, 1, ConflictPolicy::Raw, CommitOrder::OutOfOrder);
            p.budget_words = 100;
            let err = run_loop_engine(
                &mut heap,
                &mut reds,
                &mut RangeSpace::new(0, 4),
                &p,
                false,
                &|ctx: &mut TxCtx<'_>, _i| {
                    ctx.tx.with_f64s(big, 0, 1000, |_| {});
                },
                &mut NullObserver,
            )
            .unwrap_err();
            assert!(matches!(err, RunError::OutOfMemory { budget: 100, .. }));
        });
    }

    /// Work-budget violations become WorkBudgetExceeded (timeout analogue).
    #[test]
    fn work_budget_becomes_timeout_error() {
        let mut heap = Heap::new();
        let mut reds = RedVars::new();
        let mut p = params(2, 1, ConflictPolicy::None, CommitOrder::OutOfOrder);
        p.work_budget = Some(10);
        let err = run_loop_engine(
            &mut heap,
            &mut reds,
            &mut RangeSpace::new(0, 100),
            &p,
            false,
            &|ctx: &mut TxCtx<'_>, _i| ctx.tx.work(100),
            &mut NullObserver,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            RunError::WorkBudgetExceeded { budget: 10, .. }
        ));
    }

    /// Transactional allocation installs objects at commit with stable ids.
    #[test]
    fn transactional_allocation_survives_commit() {
        let mut heap = Heap::new();
        let table = heap.alloc(ObjData::zeros_i64(8));
        let mut reds = RedVars::new();
        let p = params(4, 1, ConflictPolicy::Waw, CommitOrder::OutOfOrder);
        run_loop_engine(
            &mut heap,
            &mut reds,
            &mut RangeSpace::new(0, 8),
            &p,
            false,
            &|ctx: &mut TxCtx<'_>, i| {
                let node = ctx.tx.alloc(ObjData::scalar_i64(i as i64 * 10));
                ctx.tx.write_i64(table, i as usize, node.to_i64());
            },
            &mut NullObserver,
        )
        .unwrap();
        for i in 0..8 {
            let id = alter_heap::ObjId::from_i64(heap.get(table).i64s()[i]);
            assert_eq!(heap.get(id).i64s()[0], i as i64 * 10);
        }
        assert_eq!(heap.live_objects(), 9);
    }

    /// Allocations made by transactions that later abort are abandoned;
    /// their retries allocate fresh ids and nothing ever collides.
    #[test]
    fn aborted_allocations_never_collide() {
        let mut heap = Heap::new();
        let table = heap.alloc(ObjData::zeros_i64(12));
        let hot = heap.alloc(ObjData::scalar_i64(0));
        let mut reds = RedVars::new();
        let p = params(4, 1, ConflictPolicy::Waw, CommitOrder::OutOfOrder);
        let stats = run_loop_engine(
            &mut heap,
            &mut reds,
            &mut RangeSpace::new(0, 12),
            &p,
            false,
            &|ctx: &mut TxCtx<'_>, i| {
                // Everyone contends on `hot`, so most attempts abort after
                // allocating; the committed attempt's node must be unique.
                let node = ctx.tx.alloc(ObjData::scalar_i64(i as i64));
                ctx.tx.write_i64(table, i as usize, node.to_i64());
                let v = ctx.tx.read_i64(hot, 0);
                ctx.tx.write_i64(hot, 0, v + 1);
            },
            &mut NullObserver,
        )
        .unwrap();
        assert!(stats.retries() > 0);
        let mut ids: Vec<i64> = (0..12).map(|i| heap.get(table).i64s()[i]).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 12, "every committed node id is distinct");
        for (i, raw) in (0..12).map(|i| (i, heap.get(table).i64s()[i])) {
            let node = alter_heap::ObjId::from_i64(raw);
            assert_eq!(heap.get(node).i64s()[0], i as i64);
        }
    }

    /// The observer sees every round with per-task commit decisions.
    #[test]
    fn observer_receives_round_reports() {
        struct Collect {
            rounds: u64,
            committed: u64,
            attempts: u64,
        }
        impl RoundObserver for Collect {
            fn on_round(&mut self, r: &RoundReport<'_>) {
                assert_eq!(r.round, self.rounds);
                self.rounds += 1;
                self.attempts += r.tasks.len() as u64;
                self.committed += r.tasks.iter().filter(|t| t.committed).count() as u64;
            }
        }
        let mut heap = Heap::new();
        let xs = heap.alloc(ObjData::zeros_f64(10));
        let mut reds = RedVars::new();
        let p = params(2, 2, ConflictPolicy::Waw, CommitOrder::OutOfOrder);
        let mut obs = Collect {
            rounds: 0,
            committed: 0,
            attempts: 0,
        };
        let stats = run_loop_engine(
            &mut heap,
            &mut reds,
            &mut RangeSpace::new(0, 10),
            &p,
            false,
            &|ctx: &mut TxCtx<'_>, i| ctx.tx.write_f64(xs, i as usize, 1.0),
            &mut obs,
        )
        .unwrap();
        assert_eq!(obs.rounds, stats.rounds);
        assert_eq!(obs.attempts, stats.attempts);
        assert_eq!(obs.committed, stats.committed);
    }

    /// The fast path and the exact per-writer scan reach identical verdicts
    /// and identical legacy accounting on a conflict-heavy loop, while the
    /// fast path does strictly less exact-scan work and exercises the
    /// fingerprint and pool counters.
    #[test]
    fn fast_and_exact_validation_agree() {
        let run = |fast: bool| {
            let mut heap = Heap::new();
            let xs = heap.alloc(ObjData::zeros_i64(64));
            let shared = heap.alloc(ObjData::scalar_i64(0));
            let mut reds = RedVars::new();
            let mut p = params(8, 2, ConflictPolicy::Waw, CommitOrder::OutOfOrder);
            p.fast_validation = fast;
            let stats = run_loop_engine(
                &mut heap,
                &mut reds,
                &mut RangeSpace::new(0, 64),
                &p,
                false,
                &|ctx: &mut TxCtx<'_>, i| {
                    let s = ctx.tx.read_i64(shared, 0);
                    ctx.tx.write_i64(xs, i as usize, s + i as i64);
                    if i % 7 == 0 {
                        ctx.tx.write_i64(shared, 0, s + 1);
                    }
                },
                &mut NullObserver,
            )
            .unwrap();
            (heap.digest(), stats)
        };
        let (d_fast, s_fast) = run(true);
        let (d_exact, s_exact) = run(false);
        assert_eq!(d_fast, d_exact, "committed state must be identical");
        assert_eq!(s_fast.committed, s_exact.committed);
        assert_eq!(s_fast.attempts, s_exact.attempts);
        assert_eq!(s_fast.rounds, s_exact.rounds);
        assert_eq!(
            s_fast.validate_words, s_exact.validate_words,
            "legacy accounting must not depend on the fast path"
        );
        assert!(s_fast.retries() > 0, "the loop must actually conflict");
        assert!(
            s_fast.fingerprint_hits + s_fast.fingerprint_rejects > 0,
            "fast path must have pre-checked some validations"
        );
        assert_eq!(
            s_exact.fingerprint_hits + s_exact.fingerprint_rejects,
            0,
            "exact mode never consults fingerprints"
        );
        assert!(
            s_fast.pool_reuses > 0,
            "a multi-round run must recycle buffers"
        );
    }

    /// On a conflict-free loop whose tasks touch distinct fingerprint
    /// blocks, validations are dominated by O(1) rejects: the fast path
    /// does far less than half the exact-scan work of the per-writer scan
    /// (the optimization's target regime — low-conflict workloads).
    #[test]
    fn disjoint_writes_validate_mostly_by_fingerprint_reject() {
        // Stride iterations 64 words apart so each task owns its own
        // 64-word fingerprint blocks.
        let run = |fast: bool| {
            let mut heap = Heap::new();
            let xs = heap.alloc(ObjData::zeros_i64(64 * 64));
            let mut reds = RedVars::new();
            let mut p = params(4, 4, ConflictPolicy::Waw, CommitOrder::OutOfOrder);
            p.fast_validation = fast;
            let stats = run_loop_engine(
                &mut heap,
                &mut reds,
                &mut RangeSpace::new(0, 64),
                &p,
                false,
                &|ctx: &mut TxCtx<'_>, i| {
                    let w = i as usize * 64;
                    let v = ctx.tx.read_i64(xs, w);
                    ctx.tx.write_i64(xs, w, v + 1);
                },
                &mut NullObserver,
            )
            .unwrap();
            (heap.digest(), stats)
        };
        let (d_fast, s_fast) = run(true);
        let (d_exact, s_exact) = run(false);
        assert_eq!(d_fast, d_exact);
        assert_eq!(s_fast.retries(), 0);
        assert_eq!(s_exact.retries(), 0);
        assert!(s_fast.fingerprint_rejects > 0);
        assert!(
            s_exact.exact_scan_words > 0,
            "the per-writer scan pays for every validation"
        );
        assert!(
            s_fast.exact_scan_words * 2 <= s_exact.exact_scan_words,
            "fast path must at least halve exact-scan work here ({} vs {})",
            s_fast.exact_scan_words,
            s_exact.exact_scan_words
        );
    }

    /// `avg_rw_words` is well-defined (0.0, not NaN) when nothing ran.
    #[test]
    fn avg_rw_words_of_empty_run_is_zero() {
        let stats = RunStats::default();
        assert_eq!(stats.avg_rw_words(), 0.0);
        assert_eq!(stats.retry_rate(), 0.0);
        let some = RunStats {
            attempts: 4,
            tracked_words: 10,
            ..Default::default()
        };
        assert_eq!(some.avg_rw_words(), 2.5);
    }

    /// All three drive modes — sequential, per-round scope, persistent
    /// pool — produce byte-identical heaps, retry schedules and statistics
    /// (modulo the pool-handoff counter, which *names* the drive mode), in
    /// both snapshot modes: the determinism guarantee.
    #[test]
    fn threaded_and_sequential_drivers_are_identical() {
        let run = |threaded: bool, worker_pool: bool, incremental: bool| {
            let mut heap = Heap::new();
            let xs = heap.alloc(ObjData::zeros_i64(32));
            let shared = heap.alloc(ObjData::scalar_i64(0));
            let mut reds = RedVars::new();
            let mut p = params(4, 2, ConflictPolicy::Waw, CommitOrder::OutOfOrder);
            p.worker_pool = worker_pool;
            p.incremental_snapshots = incremental;
            let stats = run_loop_engine(
                &mut heap,
                &mut reds,
                &mut RangeSpace::new(0, 32),
                &p,
                threaded,
                &|ctx: &mut TxCtx<'_>, i| {
                    let s = ctx.tx.read_i64(shared, 0);
                    ctx.tx.write_i64(xs, i as usize, s + i as i64);
                    if i % 5 == 0 {
                        ctx.tx.write_i64(shared, 0, s + 1);
                    }
                },
                &mut NullObserver,
            )
            .unwrap();
            (heap.digest(), stats)
        };
        for incremental in [false, true] {
            let (d_seq, s_seq) = run(false, false, incremental);
            let (d_thr, s_thr) = run(true, false, incremental);
            let (d_pool, s_pool) = run(true, true, incremental);
            assert_eq!(d_seq, d_thr, "scoped: committed state must be identical");
            assert_eq!(d_seq, d_pool, "pooled: committed state must be identical");
            assert_eq!(s_seq, s_thr, "scoped: statistics must be identical");
            assert_eq!(
                s_seq.modulo_drive_mode(),
                s_pool.modulo_drive_mode(),
                "pooled: statistics must be identical modulo handoffs"
            );
            assert_eq!(s_seq.pool_round_handoffs, 0);
            assert_eq!(
                s_pool.pool_round_handoffs, s_pool.rounds,
                "the pool drives every round of a threaded run"
            );
        }
    }

    /// Incremental snapshots change only their own construction counters:
    /// committed state, schedules, and every other statistic are identical,
    /// while a multi-round run re-copies strictly fewer slots.
    #[test]
    fn incremental_snapshots_only_change_snapshot_counters() {
        let run = |incremental: bool| {
            let mut heap = Heap::new();
            // Two pages of mostly-cold slots plus one hot object.
            for i in 0..96 {
                heap.alloc(ObjData::scalar_i64(i));
            }
            let xs = heap.alloc(ObjData::zeros_i64(64));
            let mut reds = RedVars::new();
            let mut p = params(4, 2, ConflictPolicy::Waw, CommitOrder::OutOfOrder);
            p.incremental_snapshots = incremental;
            let stats = run_loop_engine(
                &mut heap,
                &mut reds,
                &mut RangeSpace::new(0, 64),
                &p,
                false,
                &|ctx: &mut TxCtx<'_>, i| {
                    ctx.tx.write_i64(xs, i as usize, i as i64);
                },
                &mut NullObserver,
            )
            .unwrap();
            (heap.digest(), stats)
        };
        let (d_full, s_full) = run(false);
        let (d_inc, s_inc) = run(true);
        assert_eq!(d_full, d_inc, "committed state must be identical");
        let mask = |s: &RunStats| RunStats {
            snapshot_slots_copied: 0,
            snapshot_pages_reused: 0,
            ..*s
        };
        assert_eq!(mask(&s_full), mask(&s_inc));
        assert_eq!(s_full.snapshot_pages_reused, 0);
        assert_eq!(
            s_full.snapshot_slots_copied,
            s_full.rounds * 97,
            "full mode pays the whole table every round"
        );
        assert!(
            s_inc.snapshot_slots_copied < s_full.snapshot_slots_copied / 2,
            "incremental mode must copy far fewer slots ({} vs {})",
            s_inc.snapshot_slots_copied,
            s_full.snapshot_slots_copied
        );
        assert!(s_inc.snapshot_pages_reused > 0, "cold pages must be reused");
    }
}
