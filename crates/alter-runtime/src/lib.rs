//! # alter-runtime — the ALTER runtime system
//!
//! This crate is the paper's primary contribution (Udupa, Rajan, Thies,
//! *ALTER: Exploiting Breakable Dependences for Parallelization*, PLDI
//! 2011): a runtime that parallelizes loops by treating iterations as
//! transactions on isolated memory snapshots and *breaking* selected
//! dependences at commit time.
//!
//! * [`Annotation`] — the annotation language of §3
//!   (`[StaleReads + Reduction(delta, +)]`, …).
//! * [`ExecParams`] — the four runtime parameters of §4.2
//!   ([`ConflictPolicy`], [`CommitOrder`], the reduction policy, and the
//!   chunk factor) plus the theorem mappings
//!   ([`ExecParams::from_annotation`], [`ExecParams::tls`],
//!   [`ExecParams::doall`]).
//! * [`run_loop`] / [`LoopBuilder`] — deterministic lock-step fork-join
//!   execution of an annotated loop (§4.1, Figure 4).
//! * [`RedVars`] / [`RedVal`] — reduction variables and the merge algebra
//!   of the `ReductionPolicy`.
//!
//! ## Example: breaking a dependence chain with `StaleReads`
//!
//! ```
//! use alter_runtime::{Annotation, ExecParams, LoopBuilder, Driver};
//! use alter_heap::{Heap, ObjData};
//!
//! let mut heap = Heap::new();
//! let xs = heap.alloc(ObjData::zeros_f64(64));
//!
//! // x[i] = x[i-1] + 1 has a loop-carried RAW dependence. Snapshot
//! // isolation runs it in parallel anyway: writes are disjoint, reads may
//! // be stale.
//! let ann: Annotation = "[StaleReads]".parse()?;
//! let params = ExecParams::from_annotation(&ann, 4, 8);
//! let stats = LoopBuilder::new(&params)
//!     .range(1, 64)
//!     .run(&mut heap, Driver::threaded(), |ctx, i| {
//!         let prev = ctx.tx.read_f64(xs, i as usize - 1);
//!         ctx.tx.write_f64(xs, i as usize, prev + 1.0);
//!     })?;
//! assert_eq!(stats.retries(), 0); // no WAW conflicts
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod annotation;
mod body;
mod dep;
mod engine;
mod executor;
mod params;
mod pool;
pub mod quiet;
mod reduction;
pub mod replay;
mod space;
mod var;

pub use annotation::{Annotation, ParseAnnotationError, Policy, RedOp, Reduction};
pub use body::{LoopBody, TxCtx};
pub use dep::{
    detect_dependences, summarize_dependences, DepEdge, DepKind, DepReport, IterAccess,
    LocationStats, LoopSummary,
};
pub use engine::{
    ConflictDetail, NullObserver, PhaseCosts, RoundObserver, RoundReport, RunError, RunStats,
    TaskReport,
};
pub use executor::{run_loop, run_loop_observed, Driver, LoopBuilder};
pub use params::{CommitOrder, ConflictPolicy, ExecParams};
pub use pool::{TicketStream, WorkerPool};
pub use reduction::{RedDelta, RedLocals, RedVal, RedVarId, RedVars};
pub use replay::{diverge_bisect, Divergence, ReplayOutcome, SetDelta};
pub use space::{IterSpace, RangeSpace, SeqSpace};
pub use var::BoundScalar;
