//! Runtime configuration parameters (paper §4.2).
//!
//! The ALTER compiler emits a concurrent program parameterized by four
//! knobs: `ConflictPolicy`, `CommitOrderPolicy`, `ReductionPolicy`, and
//! `ChunkFactor`. The theorems of §4.2 map annotations to parameter
//! settings; [`ExecParams::from_annotation`], [`ExecParams::tls`] and
//! [`ExecParams::doall`] encode those mappings.

use crate::annotation::{Annotation, Policy, RedOp};
use crate::reduction::{RedVarId, RedVars};
use alter_heap::TrackMode;
use alter_trace::Recorder;
use std::sync::Arc;

/// The four conflict definitions, forming a partial order from most to
/// least restrictive: `FULL` ⊒ {`WAW`, `RAW`} ⊒ `NONE`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConflictPolicy {
    /// Commit only if neither read nor write set overlaps the write set of
    /// any concurrent transaction that committed earlier.
    Full,
    /// Commit only if the write set does not overlap earlier write sets
    /// (snapshot isolation / StaleReads).
    Waw,
    /// Commit only if the read set does not overlap earlier write sets
    /// (conflict serializability / OutOfOrder).
    Raw,
    /// Commit unconditionally (DOALL).
    None,
}

impl ConflictPolicy {
    /// The tracking mode a transaction needs under this policy.
    ///
    /// `WAW` and `NONE` elide read instrumentation entirely — the
    /// optimization behind StaleReads' performance advantage (§7.2). Write
    /// instrumentation is always on: commit needs the write ranges to merge
    /// private copies back without clobbering concurrent commits.
    pub fn track_mode(self) -> TrackMode {
        match self {
            ConflictPolicy::Full | ConflictPolicy::Raw => TrackMode::ReadsAndWrites,
            ConflictPolicy::Waw | ConflictPolicy::None => TrackMode::WritesOnly,
        }
    }

    /// Whether `self` permits a superset of the commits `other` permits
    /// (the partial order of §4.2; returns `false` for incomparable
    /// `WAW`/`RAW`).
    pub fn at_most_as_strict_as(self, other: ConflictPolicy) -> bool {
        use ConflictPolicy::*;
        matches!(
            (self, other),
            (None, _) | (_, Full) | (Waw, Waw) | (Raw, Raw)
        )
    }
}

impl std::fmt::Display for ConflictPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ConflictPolicy::Full => "FULL",
            ConflictPolicy::Waw => "WAW",
            ConflictPolicy::Raw => "RAW",
            ConflictPolicy::None => "NONE",
        };
        f.write_str(s)
    }
}

/// Whether commits must respect program order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CommitOrder {
    /// Iterations commit in program order; a failed validation squashes all
    /// later in-flight iterations (thread-level-speculation behaviour).
    InOrder,
    /// Iterations commit in validation order; only the failing iteration
    /// retries.
    OutOfOrder,
}

impl std::fmt::Display for CommitOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommitOrder::InOrder => f.write_str("InOrder"),
            CommitOrder::OutOfOrder => f.write_str("OutOfOrder"),
        }
    }
}

/// Complete configuration for one parallel loop execution.
#[derive(Clone)]
pub struct ExecParams {
    /// Conflict definition applied at validation.
    pub conflict: ConflictPolicy,
    /// Commit ordering discipline.
    pub order: CommitOrder,
    /// Active reductions: `(variable, operator)` pairs.
    pub reductions: Vec<(RedVarId, RedOp)>,
    /// Iterations per transaction (the paper fixes 16 during inference and
    /// tunes by iterative doubling afterwards).
    pub chunk: usize,
    /// Number of concurrent workers (the paper's process count N).
    pub workers: usize,
    /// Ids per allocator reservation block.
    pub alloc_block: u32,
    /// Abort the run if one transaction tracks more than this many words
    /// (emulates the paper's out-of-memory crashes on huge read sets).
    pub budget_words: u64,
    /// Abort the run once total executed cost units exceed this (emulates
    /// the paper's 10×-sequential timeout).
    pub work_budget: Option<u64>,
    /// Structured-event sink. `None` (the default) means no tracing; the
    /// engine also short-circuits on [`Recorder::is_enabled`], so the hot
    /// path pays a single branch either way.
    pub recorder: Option<Arc<dyn Recorder>>,
    /// Use the layered validation fast path (fingerprint pre-check plus a
    /// cumulative round write-set) instead of scanning every earlier
    /// committed writer. Verdicts, committed state, traces and the
    /// trace-visible cost accounting are identical either way — this knob
    /// exists for A/B measurement and as a belt-and-braces escape hatch.
    pub fast_validation: bool,
    /// Take round snapshots through the heap's persistent page table
    /// ([`alter_heap::Heap::snapshot_incremental`]) — O(slots dirtied since
    /// the last round) — instead of rebuilding the whole slot table. The
    /// snapshot views, committed state and traces are bit-identical either
    /// way; only the [`crate::RunStats::snapshot_slots_copied`] /
    /// [`crate::RunStats::snapshot_pages_reused`] counters tell them apart.
    pub incremental_snapshots: bool,
    /// Under the threaded driver, execute rounds on a persistent
    /// [`crate::WorkerPool`] (long-lived threads, per-round handoff) instead
    /// of spawning a fresh `thread::scope` per round. Results are collected
    /// in worker-index order, so commit order, traces and statistics are
    /// identical in all three drive modes —
    /// [`crate::RunStats::pool_round_handoffs`] is the one exception, since
    /// it counts the handoffs themselves. Ignored by the sequential driver.
    pub worker_pool: bool,
    /// Emit an `Event::TaskSets` with each validated task's full read and
    /// write sets (canonical `obj:lo-hi,…` form). Off by default — it fattens
    /// traces considerably and exists for the `alter-lint` isolation
    /// sanitizer, which re-checks validation verdicts against the recorded
    /// sets. No effect without a recorder.
    pub record_sets: bool,
    /// Emit per-round `Event::PhaseProfile` entries (deterministic cost
    /// units per engine phase: snapshot, execute, validate, commit). Off by
    /// default — profiling consumers opt in explicitly so existing canonical
    /// traces and their hashes are unchanged. No effect without a recorder.
    pub profile_phases: bool,
    /// Wall-clock mirror for the phase profiler: when attached, the engine
    /// adds elapsed seconds per phase. Lives outside the event stream (wall
    /// time is nondeterministic), so it never affects traces or hashes; the
    /// CLIs attach one under `ALTER_PROFILE_WALL=1`.
    pub wall_profile: Option<Arc<alter_trace::WallProfile>>,
    /// Drive rounds through the ticketed pipeline committer: the persistent
    /// worker pool streams each ticket's result back as soon as its lane
    /// finishes, and the committer validates/commits strictly in ticket
    /// order while later lanes are still executing — instead of waiting at
    /// the round barrier for the slowest task. Commit order, committed
    /// state, traces and semantic statistics are identical to the lock-step
    /// drivers; only the drive-mode counters
    /// ([`crate::RunStats::committer_stall_units`],
    /// [`crate::RunStats::worker_idle_units`]) see the overlap. Off by
    /// default. Requires the threaded driver with `worker_pool` to overlap
    /// for real; other drivers honour the flag by charging the pipelined
    /// virtual-time model (a sequential simulation of the same schedule).
    pub pipelined: bool,
    /// Committer lookahead for the pipelined driver. `1` degenerates to
    /// today's barrier behaviour (the committer starts only once the whole
    /// round has executed); `≥ 2` streams tickets through the committer as
    /// lanes deliver them. Values above 2 are accepted as headroom for
    /// future cross-epoch staging — the current engine never holds more
    /// than one round of tickets in flight. Ignored unless `pipelined`.
    pub pipeline_depth: usize,
    /// Emit `TicketIssued`/`TicketValidated`/`TicketRequeued` lifecycle
    /// events into the trace. Off by default so existing canonical traces
    /// and their hashes are unchanged; when on, *every* driver emits the
    /// identical ticket lifecycle at the identical points, so the events
    /// never break cross-driver trace identity. No effect without a
    /// recorder.
    pub trace_tickets: bool,
    /// Number of heap shards (power of two, clamped to
    /// `1..=`[`alter_heap::SHARD_LANES`]). `1` — the default — is bit-for-bit
    /// the unsharded heap. At `> 1` the heap partitions its slot table by
    /// snapshot page and validation probes the round write-set shard by
    /// shard with word-block scans. Commit order per shard equals ticket
    /// order, so committed state, traces and semantic statistics are
    /// identical at every shard count; only the masked scan-economics
    /// counters ([`crate::RunStats::shard_validate_words`] and friends)
    /// tell the settings apart.
    pub shards: usize,
}

impl std::fmt::Debug for ExecParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecParams")
            .field("conflict", &self.conflict)
            .field("order", &self.order)
            .field("reductions", &self.reductions)
            .field("chunk", &self.chunk)
            .field("workers", &self.workers)
            .field("alloc_block", &self.alloc_block)
            .field("budget_words", &self.budget_words)
            .field("work_budget", &self.work_budget)
            .field("recorder", &self.recorder.as_ref().map(|r| r.is_enabled()))
            .field("fast_validation", &self.fast_validation)
            .field("incremental_snapshots", &self.incremental_snapshots)
            .field("worker_pool", &self.worker_pool)
            .field("record_sets", &self.record_sets)
            .field("profile_phases", &self.profile_phases)
            .field("wall_profile", &self.wall_profile.is_some())
            .field("pipelined", &self.pipelined)
            .field("pipeline_depth", &self.pipeline_depth)
            .field("trace_tickets", &self.trace_tickets)
            .field("shards", &self.shards)
            .finish()
    }
}

impl ExecParams {
    /// Baseline parameters: StaleReads-like defaults with the given worker
    /// count and chunk factor.
    pub fn new(workers: usize, chunk: usize) -> Self {
        ExecParams {
            conflict: ConflictPolicy::Waw,
            order: CommitOrder::OutOfOrder,
            reductions: Vec::new(),
            chunk: chunk.max(1),
            workers: workers.max(1),
            alloc_block: alter_heap::DEFAULT_BLOCK_SIZE,
            budget_words: u64::MAX,
            work_budget: None,
            recorder: None,
            fast_validation: true,
            incremental_snapshots: true,
            worker_pool: true,
            record_sets: false,
            profile_phases: false,
            wall_profile: None,
            pipelined: false,
            pipeline_depth: 4,
            trace_tickets: false,
            shards: 1,
        }
    }

    /// Parameters enforcing an [`Annotation`] (Theorems 4.1 and 4.2):
    /// `OutOfOrder ↦ (RAW, OutOfOrder)`, `StaleReads ↦ (WAW, OutOfOrder)`,
    /// plus the annotation's reductions resolved against `reds`.
    ///
    /// # Panics
    ///
    /// Panics if a reduction names a variable not declared in `reds`.
    pub fn from_annotation_in(
        ann: &Annotation,
        reds: &RedVars,
        workers: usize,
        chunk: usize,
    ) -> Self {
        let mut p = Self::new(workers, chunk);
        p.conflict = match ann.policy {
            Policy::OutOfOrder => ConflictPolicy::Raw,
            Policy::StaleReads => ConflictPolicy::Waw,
        };
        p.order = CommitOrder::OutOfOrder;
        p.reductions = ann
            .reductions
            .iter()
            .map(|r| {
                let var = reds
                    .lookup(&r.var)
                    .unwrap_or_else(|| panic!("unknown reduction variable `{}`", r.var));
                (var, r.op)
            })
            .collect();
        p
    }

    /// Like [`ExecParams::from_annotation_in`] for annotations without
    /// reductions.
    ///
    /// # Panics
    ///
    /// Panics if the annotation declares reductions (they need a registry).
    pub fn from_annotation(ann: &Annotation, workers: usize, chunk: usize) -> Self {
        assert!(
            ann.reductions.is_empty(),
            "use from_annotation_in to resolve reduction variables"
        );
        Self::from_annotation_in(ann, &RedVars::new(), workers, chunk)
    }

    /// Safe speculative parallelism — sequential semantics (Theorem 4.3):
    /// `(RAW, InOrder)` with no reductions.
    pub fn tls(workers: usize, chunk: usize) -> Self {
        let mut p = Self::new(workers, chunk);
        p.conflict = ConflictPolicy::Raw;
        p.order = CommitOrder::InOrder;
        p
    }

    /// DOALL parallelism (Theorem 4.4): no conflict checking.
    pub fn doall(workers: usize, chunk: usize) -> Self {
        let mut p = Self::new(workers, chunk);
        p.conflict = ConflictPolicy::None;
        p.order = CommitOrder::OutOfOrder;
        p
    }

    /// Builder-style: set the reduction policy.
    pub fn with_reductions(mut self, reductions: Vec<(RedVarId, RedOp)>) -> Self {
        self.reductions = reductions;
        self
    }

    /// Builder-style: set the per-transaction tracked-memory budget.
    pub fn with_budget_words(mut self, words: u64) -> Self {
        self.budget_words = words;
        self
    }

    /// Builder-style: set the total work budget (timeout analogue).
    pub fn with_work_budget(mut self, units: u64) -> Self {
        self.work_budget = Some(units);
        self
    }

    /// Builder-style: attach a structured-event recorder.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Builder-style: enable or disable the validation fast path (on by
    /// default; disabling it is only useful for A/B measurement).
    pub fn with_fast_validation(mut self, on: bool) -> Self {
        self.fast_validation = on;
        self
    }

    /// Builder-style: enable or disable incremental round snapshots (on by
    /// default; disabling rebuilds the page table every round, for A/B
    /// measurement).
    pub fn with_incremental_snapshots(mut self, on: bool) -> Self {
        self.incremental_snapshots = on;
        self
    }

    /// Builder-style: enable or disable the persistent worker pool under
    /// the threaded driver (on by default; disabling reverts to one
    /// `thread::scope` spawn per round, for A/B measurement).
    pub fn with_worker_pool(mut self, on: bool) -> Self {
        self.worker_pool = on;
        self
    }

    /// Builder-style: emit full per-task read/write sets into the trace
    /// (off by default; used by the `alter-lint` isolation sanitizer).
    pub fn with_record_sets(mut self, on: bool) -> Self {
        self.record_sets = on;
        self
    }

    /// Builder-style: emit per-round `Event::PhaseProfile` cost-unit
    /// entries (off by default; used by the phase profiler and
    /// `alter-replay`).
    pub fn with_profile_phases(mut self, on: bool) -> Self {
        self.profile_phases = on;
        self
    }

    /// Builder-style: attach a wall-clock phase accumulator (informational
    /// only; excluded from traces and hashes).
    pub fn with_wall_profile(mut self, wall: Arc<alter_trace::WallProfile>) -> Self {
        self.wall_profile = Some(wall);
        self
    }

    /// Builder-style: drive rounds through the ticketed pipeline committer
    /// (off by default; see [`ExecParams::pipelined`]).
    pub fn with_pipelined(mut self, on: bool) -> Self {
        self.pipelined = on;
        self
    }

    /// Builder-style: set the pipelined committer's lookahead depth
    /// (default 4; `1` degenerates to the round barrier).
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth.max(1);
        self
    }

    /// Builder-style: emit ticket-lifecycle trace events (off by default).
    pub fn with_trace_tickets(mut self, on: bool) -> Self {
        self.trace_tickets = on;
        self
    }

    /// Builder-style: set the heap shard count (default 1; rounded to a
    /// power of two and clamped to `1..=`[`alter_heap::SHARD_LANES`], the
    /// same normalization [`alter_heap::Heap::set_shards`] applies).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.clamp(1, alter_heap::SHARD_LANES).next_power_of_two();
        self
    }

    /// Short human-readable form, e.g. `WAW/OutOfOrder cf=16 N=4`.
    pub fn describe(&self) -> String {
        format!(
            "{}/{} cf={} N={}",
            self.conflict, self.order, self.chunk, self.workers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduction::RedVal;

    #[test]
    fn track_modes_follow_policies() {
        assert_eq!(ConflictPolicy::Full.track_mode(), TrackMode::ReadsAndWrites);
        assert_eq!(ConflictPolicy::Raw.track_mode(), TrackMode::ReadsAndWrites);
        assert_eq!(ConflictPolicy::Waw.track_mode(), TrackMode::WritesOnly);
        assert_eq!(ConflictPolicy::None.track_mode(), TrackMode::WritesOnly);
    }

    #[test]
    fn partial_order_of_conflict_policies() {
        use ConflictPolicy::*;
        assert!(None.at_most_as_strict_as(Full));
        assert!(None.at_most_as_strict_as(Waw));
        assert!(Waw.at_most_as_strict_as(Full));
        assert!(Raw.at_most_as_strict_as(Full));
        assert!(!Full.at_most_as_strict_as(Waw));
        // WAW and RAW are incomparable.
        assert!(!Waw.at_most_as_strict_as(Raw));
        assert!(!Raw.at_most_as_strict_as(Waw));
    }

    #[test]
    fn annotation_mapping_matches_theorems() {
        let ooo = ExecParams::from_annotation(&"[OutOfOrder]".parse().unwrap(), 4, 16);
        assert_eq!(ooo.conflict, ConflictPolicy::Raw);
        assert_eq!(ooo.order, CommitOrder::OutOfOrder);

        let stale = ExecParams::from_annotation(&"[StaleReads]".parse().unwrap(), 4, 16);
        assert_eq!(stale.conflict, ConflictPolicy::Waw);
        assert_eq!(stale.order, CommitOrder::OutOfOrder);

        let tls = ExecParams::tls(4, 16);
        assert_eq!(tls.conflict, ConflictPolicy::Raw);
        assert_eq!(tls.order, CommitOrder::InOrder);

        let doall = ExecParams::doall(4, 16);
        assert_eq!(doall.conflict, ConflictPolicy::None);
    }

    #[test]
    fn annotation_reductions_resolve_against_registry() {
        let mut reds = RedVars::new();
        let delta = reds.declare("delta", RedVal::F64(0.0));
        let ann: Annotation = "[StaleReads + Reduction(delta, +)]".parse().unwrap();
        let p = ExecParams::from_annotation_in(&ann, &reds, 2, 8);
        assert_eq!(p.reductions, vec![(delta, RedOp::Add)]);
    }

    #[test]
    #[should_panic(expected = "unknown reduction variable")]
    fn unknown_reduction_variable_panics() {
        let ann: Annotation = "[StaleReads + Reduction(ghost, +)]".parse().unwrap();
        ExecParams::from_annotation_in(&ann, &RedVars::new(), 2, 8);
    }

    #[test]
    fn builders_and_describe() {
        let p = ExecParams::new(0, 0) // clamped to 1
            .with_budget_words(100)
            .with_work_budget(1000);
        assert_eq!(p.workers, 1);
        assert_eq!(p.chunk, 1);
        assert_eq!(p.budget_words, 100);
        assert_eq!(p.work_budget, Some(1000));
        assert!(!p.pipelined, "pipelining is opt-in");
        let piped = ExecParams::new(4, 16)
            .with_pipelined(true)
            .with_pipeline_depth(0);
        assert!(piped.pipelined);
        assert_eq!(piped.pipeline_depth, 1, "depth clamps to 1");
        assert_eq!(ExecParams::new(4, 16).shards, 1, "sharding is opt-in");
        assert_eq!(ExecParams::new(4, 16).with_shards(9).shards, 16);
        assert_eq!(ExecParams::new(4, 16).with_shards(0).shards, 1);
        assert_eq!(ExecParams::new(4, 16).with_shards(64).shards, 16);
        assert_eq!(
            ExecParams::new(4, 16).describe(),
            "WAW/OutOfOrder cf=16 N=4"
        );
    }
}
