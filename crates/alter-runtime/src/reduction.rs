//! Reduction variables and their merge algebra (paper §4.2, ReductionPolicy).
//!
//! Reduction variables live *outside* the transactional heap: the annotation
//! asserts that inside the loop every access to such a variable is an update
//! with the declared operator, and that nothing else reads it. The runtime
//! therefore gives loop bodies an update-only handle and merges per-
//! transaction contributions at commit time, in deterministic commit order:
//!
//! * idempotent ops (`max`, `min`, `∧`, `∨`): `Sc := Sc op new`;
//! * `+`: `Sc := Sc + (new − old)`; `×` analogously.
//!
//! Crucially, the loop body updates its private copy with the *source
//! program's* operator, while the *annotation's* operator is only applied
//! at merge time. The two need not agree: annotating SG3D's max-update
//! error with `+` still produces a valid (if slower-converging) execution,
//! exactly as §7.1 reports. [`RedLocals`] therefore tracks `(oldSt, newSt)`
//! per variable and [`RedVars::merge`] applies the paper's commit rules.

use crate::annotation::RedOp;
use std::fmt;

/// A typed reduction value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RedVal {
    /// Floating point.
    F64(f64),
    /// Integer. `∧`/`∨` treat the value as a boolean (`0`/non-zero).
    I64(i64),
}

impl RedVal {
    /// The identity element of `op` for this value's type.
    pub fn identity_of(self, op: RedOp) -> RedVal {
        match self {
            RedVal::F64(_) => match op {
                RedOp::Add => RedVal::F64(0.0),
                RedOp::Mul => RedVal::F64(1.0),
                RedOp::Max => RedVal::F64(f64::NEG_INFINITY),
                RedOp::Min => RedVal::F64(f64::INFINITY),
                RedOp::And | RedOp::Or => panic!("type error: boolean reduction over f64 variable"),
            },
            RedVal::I64(_) => match op {
                RedOp::Add => RedVal::I64(0),
                RedOp::Mul => RedVal::I64(1),
                RedOp::Max => RedVal::I64(i64::MIN),
                RedOp::Min => RedVal::I64(i64::MAX),
                RedOp::And => RedVal::I64(1),
                RedOp::Or => RedVal::I64(0),
            },
        }
    }

    /// Applies `op` pointwise: `self op other`.
    ///
    /// # Panics
    ///
    /// Panics on type mismatch (mixing `F64` and `I64`) — inference treats
    /// this as a crash of the candidate annotation.
    pub fn apply(self, op: RedOp, other: RedVal) -> RedVal {
        match (self, other) {
            (RedVal::F64(a), RedVal::F64(b)) => RedVal::F64(match op {
                RedOp::Add => a + b,
                RedOp::Mul => a * b,
                RedOp::Max => a.max(b),
                RedOp::Min => a.min(b),
                RedOp::And | RedOp::Or => {
                    panic!("type error: boolean reduction over f64 variable")
                }
            }),
            (RedVal::I64(a), RedVal::I64(b)) => RedVal::I64(match op {
                RedOp::Add => a.wrapping_add(b),
                RedOp::Mul => a.wrapping_mul(b),
                RedOp::Max => a.max(b),
                RedOp::Min => a.min(b),
                RedOp::And => i64::from(a != 0 && b != 0),
                RedOp::Or => i64::from(a != 0 || b != 0),
            }),
            (a, b) => panic!("type error: reduction over mixed types {a:?} and {b:?}"),
        }
    }

    /// The float payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is an integer.
    pub fn as_f64(self) -> f64 {
        match self {
            RedVal::F64(v) => v,
            RedVal::I64(_) => panic!("type error: expected f64 reduction value"),
        }
    }

    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is a float.
    pub fn as_i64(self) -> i64 {
        match self {
            RedVal::I64(v) => v,
            RedVal::F64(_) => panic!("type error: expected i64 reduction value"),
        }
    }
}

impl fmt::Display for RedVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RedVal::F64(v) => write!(f, "{v}"),
            RedVal::I64(v) => write!(f, "{v}"),
        }
    }
}

impl From<f64> for RedVal {
    fn from(v: f64) -> Self {
        RedVal::F64(v)
    }
}

impl From<i64> for RedVal {
    fn from(v: i64) -> Self {
        RedVal::I64(v)
    }
}

/// Handle to a declared reduction variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RedVarId(pub(crate) usize);

impl RedVarId {
    /// Index of the variable in its registry.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The registry of scalar program variables that may be named by reduction
/// annotations. Sequential code reads and writes them freely between
/// parallel loops; inside an annotated loop they are update-only.
///
/// ```
/// use alter_runtime::{RedVal, RedVars};
/// let mut reds = RedVars::new();
/// let delta = reds.declare("delta", RedVal::F64(0.0));
/// assert_eq!(reds.lookup("delta"), Some(delta));
/// reds.set(delta, RedVal::F64(2.5));
/// assert_eq!(reds.get(delta).as_f64(), 2.5);
/// ```
#[derive(Clone, Debug, Default)]
pub struct RedVars {
    names: Vec<String>,
    vals: Vec<RedVal>,
}

impl RedVars {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a variable with an initial value and returns its handle.
    pub fn declare(&mut self, name: impl Into<String>, init: RedVal) -> RedVarId {
        self.names.push(name.into());
        self.vals.push(init);
        RedVarId(self.vals.len() - 1)
    }

    /// Current committed value.
    pub fn get(&self, var: RedVarId) -> RedVal {
        self.vals[var.0]
    }

    /// Sets the committed value (sequential code only — e.g. `delta = 0.0`
    /// at the top of a convergence loop).
    pub fn set(&mut self, var: RedVarId, v: RedVal) {
        self.vals[var.0] = v;
    }

    /// Declared name of `var`.
    pub fn name(&self, var: RedVarId) -> &str {
        &self.names[var.0]
    }

    /// Looks a variable up by name.
    pub fn lookup(&self, name: &str) -> Option<RedVarId> {
        self.names.iter().position(|n| n == name).map(RedVarId)
    }

    /// All declared handles, in declaration order.
    pub fn ids(&self) -> impl Iterator<Item = RedVarId> {
        (0..self.vals.len()).map(RedVarId)
    }

    /// Number of declared variables.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// Whether no variable is declared.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Merges one transaction's contribution into the committed value
    /// using the paper's commit rules (§4.2): for idempotent operators
    /// `Sc := Sc op newSt`; for `+`, `Sc := Sc + newSt − oldSt`; `×`
    /// analogously (`Sc := Sc × newSt ∕ oldSt`, with the exact-zero case
    /// resolved to `Sc := newSt` when `Sc = oldSt`).
    pub fn merge(&mut self, d: &RedDelta) {
        let sc = self.vals[d.var.0];
        self.vals[d.var.0] = match d.op {
            RedOp::Max | RedOp::Min | RedOp::And | RedOp::Or => sc.apply(d.op, d.new),
            RedOp::Add => match (sc, d.old, d.new) {
                (RedVal::F64(s), RedVal::F64(o), RedVal::F64(n)) => RedVal::F64(s + (n - o)),
                (RedVal::I64(s), RedVal::I64(o), RedVal::I64(n)) => {
                    RedVal::I64(s.wrapping_add(n.wrapping_sub(o)))
                }
                _ => panic!("type error: reduction over mixed types"),
            },
            RedOp::Mul => match (sc, d.old, d.new) {
                (RedVal::F64(s), RedVal::F64(o), RedVal::F64(n)) => {
                    if o != 0.0 {
                        RedVal::F64(s * (n / o))
                    } else if s == o {
                        RedVal::F64(n)
                    } else {
                        RedVal::F64(f64::NAN)
                    }
                }
                (RedVal::I64(s), RedVal::I64(o), RedVal::I64(n)) => {
                    if o != 0 && n % o == 0 {
                        RedVal::I64(s.wrapping_mul(n / o))
                    } else if s == o {
                        RedVal::I64(n)
                    } else {
                        // Non-divisible integer ratio: the annotation is
                        // invalid for this program; poison the value so the
                        // validator rejects it.
                        RedVal::I64(i64::MIN)
                    }
                }
                _ => panic!("type error: reduction over mixed types"),
            },
        };
    }
}

/// One transaction's contribution to a reduction variable: the private
/// start value `oldSt` and current value `newSt` (paper §4.2 notation).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RedDelta {
    /// The variable.
    pub var: RedVarId,
    /// The *annotation's* merge operator.
    pub op: RedOp,
    /// Value of the private copy at transaction start.
    pub old: RedVal,
    /// Value of the private copy at transaction end.
    pub new: RedVal,
}

/// Per-transaction reduction state: a private copy of each variable named
/// in the active `ReductionPolicy`, updated with the source program's own
/// operators.
#[derive(Clone, Debug, Default)]
pub struct RedLocals {
    accs: Vec<RedDelta>,
}

impl RedLocals {
    /// Builds the private copies for the active reductions, initialized
    /// from the committed values (the transaction's `oldSt`).
    pub fn for_policy(policy: &[(RedVarId, RedOp)], committed: &RedVars) -> Self {
        RedLocals {
            accs: policy
                .iter()
                .map(|&(var, op)| {
                    let v = committed.get(var);
                    RedDelta {
                        var,
                        op,
                        old: v,
                        new: v,
                    }
                })
                .collect(),
        }
    }

    /// Applies the source-program update `var source_op= v` to the private
    /// copy. `source_op` is the operator written in the loop body; it may
    /// differ from the annotated merge operator.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not covered by the active reduction policy — the
    /// annotation contract says such variables must be accessed through the
    /// heap instead.
    pub fn apply_source(&mut self, var: RedVarId, source_op: RedOp, v: RedVal) {
        let acc = self
            .accs
            .iter_mut()
            .find(|d| d.var == var)
            .unwrap_or_else(|| {
                panic!("reduction update to variable not in the active ReductionPolicy")
            });
        acc.new = acc.new.apply(source_op, v);
    }

    /// Whether `var` is covered by the active policy.
    pub fn covers(&self, var: RedVarId) -> bool {
        self.accs.iter().any(|d| d.var == var)
    }

    /// Extracts the contributions for the commit engine.
    pub fn into_deltas(self) -> Vec<RedDelta> {
        self.accs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities_are_correct() {
        for (op, id) in [
            (RedOp::Add, 0.0),
            (RedOp::Mul, 1.0),
            (RedOp::Max, f64::NEG_INFINITY),
            (RedOp::Min, f64::INFINITY),
        ] {
            let got = RedVal::F64(7.0).identity_of(op).as_f64();
            assert_eq!(got, id, "{op}");
            // identity op x == x
            assert_eq!(
                RedVal::F64(id).apply(op, RedVal::F64(3.5)).as_f64(),
                3.5,
                "{op} identity law"
            );
        }
        assert_eq!(RedVal::I64(0).identity_of(RedOp::And).as_i64(), 1);
        assert_eq!(RedVal::I64(0).identity_of(RedOp::Or).as_i64(), 0);
    }

    #[test]
    fn boolean_ops_on_i64() {
        let t = RedVal::I64(5); // non-zero = true
        let f = RedVal::I64(0);
        assert_eq!(t.apply(RedOp::And, f).as_i64(), 0);
        assert_eq!(t.apply(RedOp::And, t).as_i64(), 1);
        assert_eq!(f.apply(RedOp::Or, t).as_i64(), 1);
        assert_eq!(f.apply(RedOp::Or, f).as_i64(), 0);
    }

    #[test]
    #[should_panic(expected = "type error")]
    fn boolean_op_on_f64_panics() {
        RedVal::F64(1.0).apply(RedOp::And, RedVal::F64(1.0));
    }

    #[test]
    #[should_panic(expected = "mixed types")]
    fn mixed_types_panic() {
        RedVal::F64(1.0).apply(RedOp::Add, RedVal::I64(1));
    }

    #[test]
    fn registry_declare_lookup_set() {
        let mut rv = RedVars::new();
        let a = rv.declare("delta", RedVal::F64(0.0));
        let b = rv.declare("count", RedVal::I64(3));
        assert_eq!(rv.len(), 2);
        assert_eq!(rv.lookup("count"), Some(b));
        assert_eq!(rv.lookup("nope"), None);
        assert_eq!(rv.name(a), "delta");
        rv.set(a, RedVal::F64(2.0));
        assert_eq!(rv.get(a).as_f64(), 2.0);
        assert_eq!(rv.ids().count(), 2);
    }

    #[test]
    fn delta_merge_equals_serial_fold_for_add() {
        // Two concurrent transactions each add some values starting from
        // the same committed oldSt; merging in commit order must equal the
        // serial sum.
        let mut rv = RedVars::new();
        let d = rv.declare("delta", RedVal::F64(10.0));
        let policy = vec![(d, RedOp::Add)];

        let mut t1 = RedLocals::for_policy(&policy, &rv);
        t1.apply_source(d, RedOp::Add, RedVal::F64(1.0));
        t1.apply_source(d, RedOp::Add, RedVal::F64(2.0));
        let mut t2 = RedLocals::for_policy(&policy, &rv);
        t2.apply_source(d, RedOp::Add, RedVal::F64(5.0));

        for locals in [t1, t2] {
            for delta in locals.into_deltas() {
                rv.merge(&delta);
            }
        }
        assert_eq!(rv.get(d).as_f64(), 18.0);
    }

    #[test]
    fn idempotent_merge_matches_paper_rule() {
        // Sc := Sc op newSt.
        let mut rv = RedVars::new();
        let e = rv.declare("err", RedVal::F64(0.5));
        let policy = vec![(e, RedOp::Max)];
        let mut t = RedLocals::for_policy(&policy, &rv);
        t.apply_source(e, RedOp::Max, RedVal::F64(0.1)); // below committed max
        for delta in t.into_deltas() {
            rv.merge(&delta);
        }
        assert_eq!(rv.get(e).as_f64(), 0.5);

        let mut t = RedLocals::for_policy(&policy, &rv);
        t.apply_source(e, RedOp::Max, RedVal::F64(0.9));
        for delta in t.into_deltas() {
            rv.merge(&delta);
        }
        assert_eq!(rv.get(e).as_f64(), 0.9);
    }

    #[test]
    fn mismatched_source_and_merge_ops_emulate_sg3d() {
        // The body computes `err max= v` but the annotation says `+`:
        // committed value overestimates the max but stays non-negative and
        // bounded — "also produces a valid output but convergence takes
        // much longer" (§7.1).
        let mut rv = RedVars::new();
        let e = rv.declare("err", RedVal::F64(0.0));
        let policy = vec![(e, RedOp::Add)]; // annotation op: +
        let mut t1 = RedLocals::for_policy(&policy, &rv);
        t1.apply_source(e, RedOp::Max, RedVal::F64(0.3));
        let mut t2 = RedLocals::for_policy(&policy, &rv);
        t2.apply_source(e, RedOp::Max, RedVal::F64(0.4));
        for locals in [t1, t2] {
            for d in locals.into_deltas() {
                rv.merge(&d);
            }
        }
        // Sum of per-transaction maxima, not the global max.
        assert_eq!(rv.get(e).as_f64(), 0.7);
    }

    #[test]
    fn mul_reduction_handles_zero_old_value() {
        // oldSt = 0 makes the literal Sc×new∕old rule ill-defined; the
        // Sc == oldSt case resolves to newSt.
        let mut rv = RedVars::new();
        let p = rv.declare("prod", RedVal::F64(0.0));
        let policy = vec![(p, RedOp::Mul)];
        let mut t = RedLocals::for_policy(&policy, &rv);
        t.apply_source(p, RedOp::Mul, RedVal::F64(4.0));
        for delta in t.into_deltas() {
            rv.merge(&delta);
        }
        assert_eq!(rv.get(p).as_f64(), 0.0, "0 × 4 stays 0");
    }

    #[test]
    fn mul_reduction_composes_ratios() {
        let mut rv = RedVars::new();
        let p = rv.declare("prod", RedVal::F64(2.0));
        let policy = vec![(p, RedOp::Mul)];
        let mut t1 = RedLocals::for_policy(&policy, &rv);
        t1.apply_source(p, RedOp::Mul, RedVal::F64(3.0));
        let mut t2 = RedLocals::for_policy(&policy, &rv);
        t2.apply_source(p, RedOp::Mul, RedVal::F64(5.0));
        for locals in [t1, t2] {
            for d in locals.into_deltas() {
                rv.merge(&d);
            }
        }
        assert_eq!(rv.get(p).as_f64(), 30.0, "2 × 3 × 5");
    }

    #[test]
    #[should_panic(expected = "not in the active ReductionPolicy")]
    fn update_outside_policy_panics() {
        let mut rv = RedVars::new();
        let a = rv.declare("a", RedVal::F64(0.0));
        let b = rv.declare("b", RedVal::F64(0.0));
        let mut locals = RedLocals::for_policy(&[(a, RedOp::Add)], &rv);
        assert!(locals.covers(a));
        assert!(!locals.covers(b));
        locals.apply_source(b, RedOp::Add, RedVal::F64(1.0));
    }

    #[test]
    fn conversions() {
        assert_eq!(RedVal::from(2.5).as_f64(), 2.5);
        assert_eq!(RedVal::from(7i64).as_i64(), 7);
        assert_eq!(RedVal::F64(1.5).to_string(), "1.5");
    }
}
