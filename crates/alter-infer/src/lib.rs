//! # alter-infer — test-driven annotation inference for ALTER
//!
//! Implements the inference methodology of §5 of the paper: given a program
//! with one target loop (an [`InferTarget`]), enumerate every way to add a
//! single annotation — `TLS`, `[OutOfOrder]`, `[StaleReads]`, and (when the
//! policy-only forms fail) each combined with `Reduction(var, op)` over the
//! loop's candidate scalars and the six operators — run each candidate
//! once (determinism makes one run per test sufficient, §4.3), and classify
//! the outcome as `success`, `crash`, `timeout`, `h.c.` (high conflicts) or
//! `mismatch`.
//!
//! [`infer`] produces one row of the paper's Table 3; [`tune_chunk`] runs
//! the iterative-doubling chunk-factor search behind Figure 5.

#![warn(missing_docs)]

mod auto;
mod chunk;
mod engine;
mod outcome;
mod target;

pub use auto::{auto_parallelize, AutoDecision, ChosenConfig};
pub use chunk::{tune_chunk, ChunkTuning};
pub use engine::{classify, infer, InferConfig, InferReport, PrunedCandidate, ReductionResult};
pub use outcome::Outcome;
pub use target::{InferTarget, Model, Probe, ProbeRun, ProgramOutput};

#[cfg(test)]
mod tests {
    use super::*;
    use alter_heap::{Heap, ObjData};
    use alter_runtime::{
        summarize_dependences, BoundScalar, DepReport, LoopSummary, RangeSpace, RedVal, RedVars,
        RunError, TxCtx,
    };
    use alter_sim::{simulate_loop, CostModel};

    /// Shared probe harness: build fresh state, run the loop, read output.
    fn run_program<S, B, O>(
        probe: &Probe,
        setup: impl Fn(&mut Heap, &mut RedVars) -> S,
        body: impl Fn(&S) -> B,
        range: (u64, u64),
        output: O,
    ) -> Result<ProbeRun, RunError>
    where
        B: Fn(&mut TxCtx<'_>, u64) + Sync,
        O: Fn(&Heap, &RedVars, &S) -> ProgramOutput,
    {
        let mut heap = Heap::new();
        let mut reds = RedVars::new();
        let state = setup(&mut heap, &mut reds);
        let params = probe.exec_params(&reds);
        let model = CostModel::default();
        let (stats, clock) = simulate_loop(
            &mut heap,
            &mut reds,
            &mut RangeSpace::new(range.0, range.1),
            &params,
            &model,
            body(&state),
        )?;
        Ok(ProbeRun {
            output: output(&heap, &reds, &state),
            stats,
            clock,
        })
    }

    /// A loop with no dependences: out[i] = 3i.
    struct DoallToy;

    impl InferTarget for DoallToy {
        fn name(&self) -> &str {
            "doall-toy"
        }
        fn run_sequential(&self) -> ProgramOutput {
            ProgramOutput::from_ints((0..64).map(|i| 3 * i).collect())
        }
        fn run_probe(&self, probe: &Probe) -> Result<ProbeRun, RunError> {
            run_program(
                probe,
                |heap, _| heap.alloc(ObjData::zeros_i64(64)),
                |&out| {
                    move |ctx: &mut TxCtx<'_>, i: u64| {
                        ctx.tx.work(20);
                        ctx.tx.write_i64(out, i as usize, 3 * i as i64);
                    }
                },
                (0, 64),
                |heap, _, &out| ProgramOutput::from_ints(heap.get(out).i64s().to_vec()),
            )
        }
        fn probe_summary(&self) -> LoopSummary {
            let mut heap = Heap::new();
            let out = heap.alloc(ObjData::zeros_i64(64));
            summarize_dependences(&mut heap, &mut RangeSpace::new(0, 64), |ctx, i| {
                ctx.tx.write_i64(out, i as usize, 3 * i as i64);
            })
        }
    }

    /// An order-sensitive recurrence x[i] = x[i-1] + 1 with an exact
    /// validator: TLS preserves it, StaleReads commits a wrong answer.
    struct ChainToy;

    fn chain_body(xs: alter_heap::ObjId) -> impl Fn(&mut TxCtx<'_>, u64) + Sync {
        move |ctx, i| {
            let prev = ctx.tx.read_i64(xs, i as usize - 1);
            ctx.tx.write_i64(xs, i as usize, prev + 1);
        }
    }

    impl InferTarget for ChainToy {
        fn name(&self) -> &str {
            "chain-toy"
        }
        fn run_sequential(&self) -> ProgramOutput {
            ProgramOutput::from_ints((0..256).collect())
        }
        fn run_probe(&self, probe: &Probe) -> Result<ProbeRun, RunError> {
            run_program(
                probe,
                |heap, _| heap.alloc(ObjData::zeros_i64(256)),
                |&xs| chain_body(xs),
                (1, 256),
                |heap, _, &xs| ProgramOutput::from_ints(heap.get(xs).i64s().to_vec()),
            )
        }
        fn probe_summary(&self) -> LoopSummary {
            let mut heap = Heap::new();
            let xs = heap.alloc(ObjData::zeros_i64(256));
            summarize_dependences(&mut heap, &mut RangeSpace::new(1, 256), chain_body(xs))
        }
        fn validate(&self, reference: &ProgramOutput, candidate: &ProgramOutput) -> bool {
            reference.ints == candidate.ints
        }
    }

    /// A global accumulator: sum += i over 0..512. Fails policy-only,
    /// succeeds with Reduction(sum, +).
    struct SumToy;

    impl InferTarget for SumToy {
        fn name(&self) -> &str {
            "sum-toy"
        }
        fn run_sequential(&self) -> ProgramOutput {
            ProgramOutput::from_ints(vec![(0..512).sum()])
        }
        fn run_probe(&self, probe: &Probe) -> Result<ProbeRun, RunError> {
            let mut heap = Heap::new();
            let mut reds = RedVars::new();
            let sum = BoundScalar::declare(&mut heap, &mut reds, "sum", RedVal::I64(0));
            let params = probe.exec_params(&reds);
            let model = CostModel::default();
            let was_reduced = !params.reductions.is_empty();
            let (stats, clock) = simulate_loop(
                &mut heap,
                &mut reds,
                &mut RangeSpace::new(0, 512),
                &params,
                &model,
                |ctx, i| {
                    ctx.tx.work(5);
                    sum.add(ctx, i as i64);
                },
            )?;
            let v = sum.seq_get_sync(&mut heap, &mut reds, was_reduced);
            Ok(ProbeRun {
                output: ProgramOutput::from_ints(vec![v.as_i64()]),
                stats,
                clock,
            })
        }
        fn probe_summary(&self) -> LoopSummary {
            let mut heap = Heap::new();
            let mut reds = RedVars::new();
            let sum = BoundScalar::declare(&mut heap, &mut reds, "sum", RedVal::I64(0));
            let mut s =
                summarize_dependences(&mut heap, &mut RangeSpace::new(0, 512), move |ctx, i| {
                    sum.add(ctx, i as i64);
                });
            s.label("sum", sum.object());
            s
        }
        fn reduction_candidates(&self) -> Vec<String> {
            vec!["sum".into()]
        }
    }

    /// A loop that panics partway through.
    struct CrashToy;

    impl InferTarget for CrashToy {
        fn name(&self) -> &str {
            "crash-toy"
        }
        fn run_sequential(&self) -> ProgramOutput {
            ProgramOutput::default()
        }
        fn run_probe(&self, probe: &Probe) -> Result<ProbeRun, RunError> {
            run_program(
                probe,
                |heap, _| heap.alloc(ObjData::zeros_i64(8)),
                |&out| {
                    move |ctx: &mut TxCtx<'_>, i: u64| {
                        if i == 5 {
                            panic!("toy crash at iteration {i}");
                        }
                        ctx.tx.write_i64(out, i as usize, 0);
                    }
                },
                (0, 8),
                |_, _, _| ProgramOutput::default(),
            )
        }
        fn probe_dependences(&self) -> DepReport {
            DepReport::default()
        }
    }

    #[test]
    fn doall_toy_succeeds_everywhere() {
        let report = infer(&DoallToy, &InferConfig::default());
        assert!(!report.dep.any());
        assert!(report.tls.is_success(), "tls: {}", report.tls);
        assert!(
            report.out_of_order.is_success(),
            "ooo: {}",
            report.out_of_order
        );
        assert!(
            report.stale_reads.is_success(),
            "stale: {}",
            report.stale_reads
        );
        assert!(report.reductions.is_empty(), "no reduction search needed");
        assert_eq!(report.valid_annotations.len(), 3);
        assert_eq!(report.reduction_cell(), "N/A");
    }

    #[test]
    fn chain_toy_mismatches_under_stale_reads() {
        let report = infer(&ChainToy, &InferConfig::default());
        assert!(report.dep.raw, "the chain has a RAW dep");
        // StaleReads commits without conflicts but breaks the chain.
        assert_eq!(report.stale_reads, Outcome::OutputMismatch);
        // TLS either succeeds (sequential semantics) or is flagged high-
        // conflict / timeout — it must never mismatch.
        assert_ne!(report.tls, Outcome::OutputMismatch);
    }

    #[test]
    fn sum_toy_needs_the_add_reduction() {
        let report = infer(&SumToy, &InferConfig::default());
        assert!(report.dep.any(), "shared accumulator is a dep");
        assert!(!report.out_of_order.is_success());
        assert!(!report.stale_reads.is_success());
        let ok = report.successful_reductions();
        assert!(!ok.is_empty(), "Reduction(sum, +) must be found");
        assert!(ok.iter().all(|r| r.op == alter_runtime::RedOp::Add));
        assert_eq!(report.reduction_cell(), "+");
        assert!(report
            .valid_annotations
            .iter()
            .any(|a| a.contains("Reduction(sum, +)")));
        // Wrong operators must be rejected.
        assert!(report
            .reductions
            .iter()
            .filter(|r| r.op == alter_runtime::RedOp::Max)
            .all(|r| !r.outcome.is_success()));
    }

    #[test]
    fn crash_toy_is_reported_as_crash() {
        let report = infer(&CrashToy, &InferConfig::default());
        assert_eq!(report.tls.short(), "crash");
        assert_eq!(report.out_of_order.short(), "crash");
        assert_eq!(report.stale_reads.short(), "crash");
        assert!(report.valid_annotations.is_empty());
    }

    #[test]
    fn serial_and_concurrent_probes_yield_identical_reports() {
        // SumToy exercises the full pipeline: three model probes plus the
        // bounded reduction search (2 models × 6 operators).
        let serial = infer(
            &SumToy,
            &InferConfig {
                concurrent_probes: false,
                ..Default::default()
            },
        );
        let concurrent = infer(
            &SumToy,
            &InferConfig {
                concurrent_probes: true,
                ..Default::default()
            },
        );
        assert_eq!(serial, concurrent);
        assert!(!concurrent.reductions.is_empty(), "search actually ran");
    }

    #[test]
    fn pruning_skips_provably_failing_probes_without_changing_the_answer() {
        let pruned = infer(&SumToy, &InferConfig::default());
        let exhaustive = infer(
            &SumToy,
            &InferConfig {
                prune: false,
                ..Default::default()
            },
        );
        // The shared accumulator serialises every policy-only probe: the
        // analyzer proves all three model probes fail.
        assert!(
            !pruned.pruned_candidates.is_empty(),
            "expected pruning on the accumulator: {pruned:?}"
        );
        assert!(pruned.probes_run < exhaustive.probes_run);
        assert!(exhaustive.pruned_candidates.is_empty());
        // Identity: the same annotations are reported valid either way.
        assert_eq!(pruned.valid_annotations, exhaustive.valid_annotations);
        assert_eq!(pruned.reduction_cell(), exhaustive.reduction_cell());
        assert_eq!(pruned.dep, exhaustive.dep);
        // Soundness: nothing the analyzer pruned succeeds exhaustively.
        for pc in &pruned.pruned_candidates {
            let observed = if pc.annotation == "TLS" {
                Some(&exhaustive.tls)
            } else if pc.annotation == "OutOfOrder" {
                Some(&exhaustive.out_of_order)
            } else if pc.annotation == "StaleReads" {
                Some(&exhaustive.stale_reads)
            } else {
                None
            };
            if let Some(o) = observed {
                assert!(!o.is_success(), "{} was pruned but succeeds", pc.annotation);
            }
        }
    }

    #[test]
    fn targets_without_a_summary_are_never_pruned() {
        let report = infer(&CrashToy, &InferConfig::default());
        assert!(report.pruned_candidates.is_empty());
        assert_eq!(report.probes_run, 3, "all three model probes ran");
    }

    #[test]
    fn chunk_tuning_prefers_larger_chunks_for_cheap_bodies() {
        let tuning = tune_chunk(&DoallToy, Model::StaleReads, None, 4);
        assert!(tuning.curve.len() >= 2);
        assert!(tuning.best > 1, "cf=1 pays one barrier per iteration");
        // Curve is deterministic and covers doubling values.
        assert_eq!(tuning.curve[0].0, 1);
        assert_eq!(tuning.curve[1].0, 2);
    }
}
