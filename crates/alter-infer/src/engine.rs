//! The annotation inference algorithm (paper §5).
//!
//! "ALTER creates many different versions, each containing a single
//! annotation on a single loop … runs each of these programs on every input
//! in the test suite … Those versions matching the output of the unmodified
//! sequential version are presented to the user as annotations that are
//! likely valid."

use crate::outcome::Outcome;
use crate::target::{InferTarget, Model, Probe, ProgramOutput};
use alter_runtime::{quiet::quiet_panics, DepReport, RedOp, RunError, WorkerPool};
use alter_trace::{Event, Recorder};
use std::sync::Arc;

/// Tunables of the inference engine, with the paper's defaults.
#[derive(Clone)]
pub struct InferConfig {
    /// Workers used during probing.
    pub workers: usize,
    /// Chunk factor during probing — "fixing the chunk factor at 16" (§5).
    pub chunk: usize,
    /// Timeout threshold: "more than 10 times the sequential execution
    /// time" (§5).
    pub timeout_factor: f64,
    /// High-conflict threshold: "more than 50% of the attempted commits
    /// fail" (§5).
    pub high_conflict_threshold: f64,
    /// Per-transaction tracked-memory budget (emulates physical memory).
    pub budget_words: u64,
    /// Structured-event sink. Each probe is bracketed by
    /// `ProbeStart`/`ProbeOutcome` events and its engine run emits into the
    /// same recorder, so a trace shows each candidate annotation followed
    /// by exactly what its execution did.
    pub recorder: Option<Arc<dyn Recorder>>,
    /// Run independent probes concurrently through a [`WorkerPool`] (on by
    /// default). Each probe owns its heap and its seeded inputs, so the
    /// report is identical to the serial schedule; probing falls back to
    /// serial automatically while a recorder is enabled, because the probes'
    /// event streams would otherwise interleave.
    pub concurrent_probes: bool,
}

impl std::fmt::Debug for InferConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferConfig")
            .field("workers", &self.workers)
            .field("chunk", &self.chunk)
            .field("timeout_factor", &self.timeout_factor)
            .field("high_conflict_threshold", &self.high_conflict_threshold)
            .field("budget_words", &self.budget_words)
            .field("recorder", &self.recorder.as_ref().map(|r| r.is_enabled()))
            .field("concurrent_probes", &self.concurrent_probes)
            .finish()
    }
}

impl Default for InferConfig {
    fn default() -> Self {
        InferConfig {
            workers: 4,
            chunk: 16,
            timeout_factor: 10.0,
            high_conflict_threshold: 0.5,
            budget_words: 1 << 22, // 4M words = 32 MiB of tracked state
            recorder: None,
            concurrent_probes: true,
        }
    }
}

/// Result of probing one reduction candidate.
#[derive(Clone, Debug, PartialEq)]
pub struct ReductionResult {
    /// Model the reduction was combined with.
    pub model: Model,
    /// Variable name.
    pub var: String,
    /// Operator.
    pub op: RedOp,
    /// Classified outcome.
    pub outcome: Outcome,
}

/// The complete inference result for one benchmark — one row of Table 3.
#[derive(Clone, Debug, PartialEq)]
pub struct InferReport {
    /// Benchmark name.
    pub name: String,
    /// Loop-carried dependence check (the Dep column).
    pub dep: DepReport,
    /// Outcome under thread-level speculation.
    pub tls: Outcome,
    /// Outcome under `[OutOfOrder]` (no reductions).
    pub out_of_order: Outcome,
    /// Outcome under `[StaleReads]` (no reductions).
    pub stale_reads: Outcome,
    /// Outcomes of the bounded reduction search (empty when a policy-only
    /// annotation already succeeded).
    pub reductions: Vec<ReductionResult>,
    /// Annotation strings that preserved the program output.
    pub valid_annotations: Vec<String>,
}

impl InferReport {
    /// The reduction suggestions that succeeded, e.g. `["+", "max"]` for
    /// SG3D.
    pub fn successful_reductions(&self) -> Vec<&ReductionResult> {
        self.reductions
            .iter()
            .filter(|r| r.outcome.is_success())
            .collect()
    }

    /// The Table 3 "Reduction" cell: operators that worked, or `N/A`.
    pub fn reduction_cell(&self) -> String {
        let mut ops: Vec<String> = Vec::new();
        for r in self.successful_reductions() {
            let s = r.op.to_string();
            if !ops.contains(&s) {
                ops.push(s);
            }
        }
        if ops.is_empty() {
            "N/A".to_owned()
        } else {
            ops.join("/")
        }
    }
}

/// Classifies a probe result per §5. The timeout check compares the
/// simulated parallel time against the run's own sequential-work clock
/// ("more than 10 times the sequential execution time"); the high-conflict
/// check uses the retry rate ("more than 50% of the attempted commits
/// fail").
pub fn classify(
    target: &dyn InferTarget,
    reference: &ProgramOutput,
    result: Result<crate::target::ProbeRun, RunError>,
    cfg: &InferConfig,
) -> Outcome {
    match result {
        Err(RunError::Crash(msg)) => Outcome::Crash(msg),
        Err(RunError::OutOfMemory { .. }) => Outcome::OutOfMemory,
        Err(RunError::WorkBudgetExceeded { .. }) => Outcome::Timeout,
        Ok(run) => {
            if run.clock.par_units > cfg.timeout_factor * run.clock.seq_units.max(1.0) {
                Outcome::Timeout
            } else if run.stats.retry_rate() > cfg.high_conflict_threshold {
                Outcome::HighConflicts
            } else if target.validate(reference, &run.output) {
                Outcome::Success
            } else {
                Outcome::OutputMismatch
            }
        }
    }
}

fn probe_outcome(
    target: &dyn InferTarget,
    reference: &ProgramOutput,
    probe: &Probe,
    cfg: &InferConfig,
) -> Outcome {
    let rec = cfg.recorder.as_deref().filter(|r| r.is_enabled());
    if let Some(rec) = rec {
        rec.record(Event::ProbeStart {
            annotation: probe.describe(),
        });
    }
    let result = quiet_panics(|| target.run_probe(probe));
    let outcome = classify(target, reference, result, cfg);
    if let Some(rec) = rec {
        rec.record(Event::ProbeOutcome {
            annotation: probe.describe(),
            outcome: outcome.short().to_owned(),
        });
    }
    outcome
}

/// Measures the sequential cost of the program in cost units, by running
/// the target loop single-worker without conflict checking (semantically
/// sequential).
fn sequential_cost(target: &dyn InferTarget, cfg: &InferConfig) -> u64 {
    let probe = Probe::new(Model::Doall, 1, cfg.chunk);
    match quiet_panics(|| target.run_probe(&probe)) {
        Ok(run) => run.stats.cost_units().max(1),
        // If even the sequential replay fails, fall back to an arbitrary
        // budget; every probe will fail anyway and be reported as such.
        Err(_) => 1 << 20,
    }
}

/// Runs a batch of independent probes and returns their outcomes in probe
/// order. Serial when so configured, when the batch is trivial, or when a
/// recorder is enabled (each probe's engine run writes to the shared
/// recorder, and concurrency would interleave the event streams);
/// otherwise the probes are handed to a [`WorkerPool`] in rounds, job *i*
/// on worker *i*, so the outcome vector — and everything derived from it —
/// is byte-identical to the serial schedule.
fn run_probes(
    target: &(dyn InferTarget + Sync),
    reference: &ProgramOutput,
    probes: &[Probe],
    cfg: &InferConfig,
) -> Vec<Outcome> {
    let serial = !cfg.concurrent_probes
        || probes.len() <= 1
        || cfg.recorder.as_deref().is_some_and(|r| r.is_enabled());
    if serial {
        return probes
            .iter()
            .map(|p| probe_outcome(target, reference, p, cfg))
            .collect();
    }
    let run_one = |_worker: usize, idx: usize| probe_outcome(target, reference, &probes[idx], cfg);
    std::thread::scope(|scope| {
        let mut pool = WorkerPool::new(scope, cfg.workers, &run_one);
        let indices: Vec<usize> = (0..probes.len()).collect();
        let mut outcomes = Vec::with_capacity(probes.len());
        for round in indices.chunks(pool.workers()) {
            outcomes.extend(pool.run_round(round.to_vec()));
        }
        outcomes
    })
}

/// Runs the full inference algorithm on one target: dependence check, the
/// three Table 3 models, and — if no policy-only annotation succeeds — the
/// bounded reduction search over the target's candidate variables and the
/// six operators.
pub fn infer(target: &(dyn InferTarget + Sync), cfg: &InferConfig) -> InferReport {
    let reference = target.run_sequential();
    let seq_cost = sequential_cost(target, cfg);
    // Hard safety net: a parallel run re-executes at most `workers`× the
    // sequential work under the lock-step protocol, so anything beyond
    // workers × factor × sequential is a runaway.
    let work_budget = (seq_cost as f64 * cfg.timeout_factor * cfg.workers as f64) as u64;

    let dep = target.probe_dependences();

    let budget_words = target.tracked_budget_words().unwrap_or(cfg.budget_words);
    let make_probe = |model: Model, reduction: Option<(String, RedOp)>| {
        let mut probe = Probe::new(model, cfg.workers, cfg.chunk);
        probe.reduction = reduction;
        probe.budget_words = budget_words;
        probe.work_budget = Some(work_budget);
        probe.recorder = cfg.recorder.clone();
        probe
    };

    let model_probes = [
        make_probe(Model::Tls, None),
        make_probe(Model::OutOfOrder, None),
        make_probe(Model::StaleReads, None),
    ];
    let mut model_outcomes = run_probes(target, &reference, &model_probes, cfg).into_iter();
    let tls = model_outcomes.next().expect("three model probes");
    let out_of_order = model_outcomes.next().expect("three model probes");
    let stale_reads = model_outcomes.next().expect("three model probes");

    let mut valid_annotations = Vec::new();
    for (probe, outcome) in model_probes.iter().zip([&tls, &out_of_order, &stale_reads]) {
        if outcome.is_success() {
            valid_annotations.push(format!("[{}]", probe.describe()));
        }
    }

    // "A search for a valid reduction is performed only if none of the
    // annotations of the form (P, ε) are valid" (§5).
    let mut reductions = Vec::new();
    if !out_of_order.is_success() && !stale_reads.is_success() {
        let mut red_probes = Vec::new();
        let mut red_meta = Vec::new();
        for var in target.reduction_candidates() {
            for op in RedOp::ALL {
                for model in [Model::OutOfOrder, Model::StaleReads] {
                    red_probes.push(make_probe(model, Some((var.clone(), op))));
                    red_meta.push((model, var.clone(), op));
                }
            }
        }
        let outcomes = run_probes(target, &reference, &red_probes, cfg);
        for (((model, var, op), probe), outcome) in
            red_meta.into_iter().zip(&red_probes).zip(outcomes)
        {
            if outcome.is_success() {
                valid_annotations.push(format!("[{}]", probe.describe()));
            }
            reductions.push(ReductionResult {
                model,
                var,
                op,
                outcome,
            });
        }
    }

    InferReport {
        name: target.name().to_owned(),
        dep,
        tls,
        out_of_order,
        stale_reads,
        reductions,
        valid_annotations,
    }
}
