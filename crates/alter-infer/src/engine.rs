//! The annotation inference algorithm (paper §5).
//!
//! "ALTER creates many different versions, each containing a single
//! annotation on a single loop … runs each of these programs on every input
//! in the test suite … Those versions matching the output of the unmodified
//! sequential version are presented to the user as annotations that are
//! likely valid."

use crate::outcome::Outcome;
use crate::target::{InferTarget, Model, Probe, ProgramOutput};
use alter_analyze::{interpret, predict, static_verdict, AnalyzeConfig, StaticVerdict, Verdict};
use alter_runtime::{quiet::quiet_panics, DepReport, RedOp, RunError, WorkerPool};
use alter_trace::{Event, Phase, Recorder};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tunables of the inference engine, with the paper's defaults.
#[derive(Clone)]
pub struct InferConfig {
    /// Workers used during probing.
    pub workers: usize,
    /// Chunk factor during probing — "fixing the chunk factor at 16" (§5).
    pub chunk: usize,
    /// Timeout threshold: "more than 10 times the sequential execution
    /// time" (§5).
    pub timeout_factor: f64,
    /// High-conflict threshold: "more than 50% of the attempted commits
    /// fail" (§5).
    pub high_conflict_threshold: f64,
    /// Per-transaction tracked-memory budget (emulates physical memory).
    pub budget_words: u64,
    /// Structured-event sink. Each probe is bracketed by
    /// `ProbeStart`/`ProbeOutcome` events and its engine run emits into the
    /// same recorder, so a trace shows each candidate annotation followed
    /// by exactly what its execution did.
    pub recorder: Option<Arc<dyn Recorder>>,
    /// Run independent probes concurrently through a [`WorkerPool`] (on by
    /// default). Each probe owns its heap and its seeded inputs, so the
    /// report is identical to the serial schedule; probing falls back to
    /// serial automatically while a recorder is enabled, because the probes'
    /// event streams would otherwise interleave.
    pub concurrent_probes: bool,
    /// Consult the static analyzer before each probe and skip candidates it
    /// proves must fail (on by default). Pruning never changes which
    /// annotations are reported valid — the analyzer's verdicts are
    /// one-sided — only how many probes actually run; see
    /// [`InferReport::pruned_candidates`]. Off re-enables the paper's
    /// exhaustive search, for A/B comparison (and also disables the static
    /// tier below — `prune: false` means exhaustive).
    pub prune: bool,
    /// Consult the abstract interpreter's two-sided verdicts before the
    /// dynamic predictor (on by default; requires `prune` and a target
    /// that provides [`InferTarget::loop_spec`]). Candidates it proves
    /// safe or unsound skip their probes entirely — no replay, no
    /// execution — and are counted in [`InferReport::static_pruned`].
    /// Off isolates PR 5's dynamic-only pruning, for A/B comparison.
    pub static_prune: bool,
    /// Emit phase-profile events (off by default). Each probe's engine run
    /// emits per-round phase costs, and the inference driver adds one
    /// `infer_probe` entry per executed probe (its total cost units, keyed
    /// by probe index), so a profiled inference trace attributes cost to
    /// the search itself as well as to the engine phases within it.
    pub profile_phases: bool,
}

impl std::fmt::Debug for InferConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferConfig")
            .field("workers", &self.workers)
            .field("chunk", &self.chunk)
            .field("timeout_factor", &self.timeout_factor)
            .field("high_conflict_threshold", &self.high_conflict_threshold)
            .field("budget_words", &self.budget_words)
            .field("recorder", &self.recorder.as_ref().map(|r| r.is_enabled()))
            .field("concurrent_probes", &self.concurrent_probes)
            .field("prune", &self.prune)
            .field("static_prune", &self.static_prune)
            .field("profile_phases", &self.profile_phases)
            .finish()
    }
}

impl Default for InferConfig {
    fn default() -> Self {
        InferConfig {
            workers: 4,
            chunk: 16,
            timeout_factor: 10.0,
            high_conflict_threshold: 0.5,
            budget_words: 1 << 22, // 4M words = 32 MiB of tracked state
            recorder: None,
            concurrent_probes: true,
            prune: true,
            static_prune: true,
            profile_phases: false,
        }
    }
}

/// Result of probing one reduction candidate.
#[derive(Clone, Debug, PartialEq)]
pub struct ReductionResult {
    /// Model the reduction was combined with.
    pub model: Model,
    /// Variable name.
    pub var: String,
    /// Operator.
    pub op: RedOp,
    /// Classified outcome.
    pub outcome: Outcome,
}

/// A candidate annotation the static analyzer proved must fail; its probe
/// was skipped and the predicted outcome recorded in its place.
#[derive(Clone, Debug, PartialEq)]
pub struct PrunedCandidate {
    /// Annotation-style probe description (e.g. `StaleReads`,
    /// `OutOfOrder + Reduction(sum, +)`).
    pub annotation: String,
    /// The outcome recorded in the report for this candidate.
    pub outcome: Outcome,
    /// The analyzer's verdict, human-readable (predicted retry rate or
    /// tracked-words footprint).
    pub reason: String,
}

/// The complete inference result for one benchmark — one row of Table 3.
#[derive(Clone, Debug, PartialEq)]
pub struct InferReport {
    /// Benchmark name.
    pub name: String,
    /// Loop-carried dependence check (the Dep column).
    pub dep: DepReport,
    /// Outcome under thread-level speculation.
    pub tls: Outcome,
    /// Outcome under `[OutOfOrder]` (no reductions).
    pub out_of_order: Outcome,
    /// Outcome under `[StaleReads]` (no reductions).
    pub stale_reads: Outcome,
    /// Outcomes of the bounded reduction search (empty when a policy-only
    /// annotation already succeeded).
    pub reductions: Vec<ReductionResult>,
    /// Annotation strings that preserved the program output.
    pub valid_annotations: Vec<String>,
    /// Candidates skipped because the dynamic predictor proved they must
    /// fail (empty when pruning is off or the target provides no summary).
    pub pruned_candidates: Vec<PrunedCandidate>,
    /// Candidates skipped on the abstract interpreter's two-sided proofs —
    /// both proved-safe candidates (recorded as successes, so they still
    /// appear in [`InferReport::valid_annotations`]) and proved-unsound
    /// ones. Empty when static pruning is off or the target provides no
    /// [`InferTarget::loop_spec`]. Disjoint from
    /// [`InferReport::pruned_candidates`]: the static tier is consulted
    /// first and a statically-decided probe never reaches the predictor.
    pub static_pruned: Vec<PrunedCandidate>,
    /// Number of candidate probes actually executed (pruned candidates
    /// excluded; the internal sequential-cost replay is not counted).
    pub probes_run: u64,
}

impl InferReport {
    /// The reduction suggestions that succeeded, e.g. `["+", "max"]` for
    /// SG3D.
    pub fn successful_reductions(&self) -> Vec<&ReductionResult> {
        self.reductions
            .iter()
            .filter(|r| r.outcome.is_success())
            .collect()
    }

    /// The Table 3 "Reduction" cell: operators that worked, or `N/A`.
    pub fn reduction_cell(&self) -> String {
        let mut ops: Vec<String> = Vec::new();
        for r in self.successful_reductions() {
            let s = r.op.to_string();
            if !ops.contains(&s) {
                ops.push(s);
            }
        }
        if ops.is_empty() {
            "N/A".to_owned()
        } else {
            ops.join("/")
        }
    }
}

/// Classifies a probe result per §5. The timeout check compares the
/// simulated parallel time against the run's own sequential-work clock
/// ("more than 10 times the sequential execution time"); the high-conflict
/// check uses the retry rate ("more than 50% of the attempted commits
/// fail").
pub fn classify(
    target: &dyn InferTarget,
    reference: &ProgramOutput,
    result: Result<crate::target::ProbeRun, RunError>,
    cfg: &InferConfig,
) -> Outcome {
    match result {
        Err(RunError::Crash(msg)) => Outcome::Crash(msg),
        Err(RunError::OutOfMemory { .. }) => Outcome::OutOfMemory,
        Err(RunError::WorkBudgetExceeded { .. }) => Outcome::Timeout,
        Ok(run) => {
            if run.clock.par_units > cfg.timeout_factor * run.clock.seq_units.max(1.0) {
                Outcome::Timeout
            } else if run.stats.retry_rate() > cfg.high_conflict_threshold {
                Outcome::HighConflicts
            } else if target.validate(reference, &run.output) {
                Outcome::Success
            } else {
                Outcome::OutputMismatch
            }
        }
    }
}

fn probe_outcome(
    target: &dyn InferTarget,
    reference: &ProgramOutput,
    probe: &Probe,
    cfg: &InferConfig,
    probe_index: &AtomicU64,
) -> Outcome {
    // Every executed probe consumes one index, recording or not, so the
    // numbering matches "probes run" whenever emission happens (recording
    // forces the serial schedule, so the order is deterministic too).
    let index = probe_index.fetch_add(1, Ordering::Relaxed);
    let rec = cfg.recorder.as_deref().filter(|r| r.is_enabled());
    if let Some(rec) = rec {
        rec.record(Event::ProbeStart {
            annotation: probe.describe(),
        });
    }
    let result = quiet_panics(|| target.run_probe(probe));
    let probe_cost = result.as_ref().map_or(0, |run| run.stats.cost_units());
    let outcome = classify(target, reference, result, cfg);
    if let Some(rec) = rec {
        if cfg.profile_phases {
            rec.record(Event::PhaseProfile {
                round: index,
                phase: Phase::InferProbe,
                cost: probe_cost,
            });
        }
        rec.record(Event::ProbeOutcome {
            annotation: probe.describe(),
            outcome: outcome.short().to_owned(),
        });
    }
    outcome
}

/// Measures the sequential cost of the program in cost units, by running
/// the target loop single-worker without conflict checking (semantically
/// sequential).
fn sequential_cost(target: &dyn InferTarget, cfg: &InferConfig) -> u64 {
    let probe = Probe::new(Model::Doall, 1, cfg.chunk);
    match quiet_panics(|| target.run_probe(&probe)) {
        Ok(run) => run.stats.cost_units().max(1),
        // If even the sequential replay fails, fall back to an arbitrary
        // budget; every probe will fail anyway and be reported as such.
        Err(_) => 1 << 20,
    }
}

/// Runs a batch of independent probes and returns their outcomes in probe
/// order. Serial when so configured, when the batch is trivial, or when a
/// recorder is enabled (each probe's engine run writes to the shared
/// recorder, and concurrency would interleave the event streams);
/// otherwise the probes are handed to a [`WorkerPool`] in rounds, job *i*
/// on worker *i*, so the outcome vector — and everything derived from it —
/// is byte-identical to the serial schedule.
fn run_probes(
    target: &(dyn InferTarget + Sync),
    reference: &ProgramOutput,
    probes: &[Probe],
    cfg: &InferConfig,
    probe_index: &AtomicU64,
) -> Vec<Outcome> {
    let serial = !cfg.concurrent_probes
        || probes.len() <= 1
        || cfg.recorder.as_deref().is_some_and(|r| r.is_enabled());
    if serial {
        return probes
            .iter()
            .map(|p| probe_outcome(target, reference, p, cfg, probe_index))
            .collect();
    }
    let run_one = |_worker: usize, idx: usize| {
        probe_outcome(target, reference, &probes[idx], cfg, probe_index)
    };
    std::thread::scope(|scope| {
        let mut pool = WorkerPool::new(scope, cfg.workers, &run_one);
        let indices: Vec<usize> = (0..probes.len()).collect();
        let mut outcomes = Vec::with_capacity(probes.len());
        for round in indices.chunks(pool.workers()) {
            outcomes.extend(pool.run_round(round.to_vec()));
        }
        outcomes
    })
}

/// How one planned candidate will be resolved.
enum Plan {
    /// Neither tier proved anything — execute the probe.
    Run,
    /// The dynamic predictor proved the probe must fail (always a
    /// must-fail [`Verdict`] by construction).
    Dyn(Verdict),
    /// The abstract interpreter proved the outcome in either direction;
    /// the string is the human-readable proof.
    Static(Outcome, String),
}

impl Plan {
    /// Wraps a dynamic-predictor verdict: `Unknown` means "just run it".
    fn from_dynamic(verdict: Verdict) -> Plan {
        if verdict.must_fail() {
            Plan::Dyn(verdict)
        } else {
            Plan::Run
        }
    }
}

/// Mutable pruning ledger threaded through the candidate batches: how many
/// probes actually executed, and what each tier skipped.
#[derive(Default)]
struct PruneLedger {
    probes_run: u64,
    pruned: Vec<PrunedCandidate>,
    static_pruned: Vec<PrunedCandidate>,
}

/// Resolves a batch of planned `(probe, plan)` pairs: probes neither tier
/// could rule on are run (in batch order, through the serial/concurrent
/// scheduler); statically-proved probes record their proved outcome in
/// `ledger.static_pruned`, dynamically-must-fail probes their predicted
/// outcome in `ledger.pruned`.
fn resolve_batch(
    target: &(dyn InferTarget + Sync),
    reference: &ProgramOutput,
    planned: &[(Probe, Plan)],
    cfg: &InferConfig,
    ledger: &mut PruneLedger,
    probe_index: &AtomicU64,
) -> Vec<Outcome> {
    let live: Vec<Probe> = planned
        .iter()
        .filter(|(_, plan)| matches!(plan, Plan::Run))
        .map(|(p, _)| p.clone())
        .collect();
    ledger.probes_run += live.len() as u64;
    let mut live_outcomes = run_probes(target, reference, &live, cfg, probe_index).into_iter();
    planned
        .iter()
        .map(|(probe, plan)| match plan {
            Plan::Run => live_outcomes.next().expect("one outcome per live probe"),
            Plan::Dyn(verdict) => {
                let outcome = match verdict {
                    Verdict::OutOfMemory { .. } => Outcome::OutOfMemory,
                    Verdict::HighConflicts { .. } => Outcome::HighConflicts,
                    Verdict::Unknown => unreachable!("Plan::Dyn holds must-fail verdicts only"),
                };
                ledger.pruned.push(PrunedCandidate {
                    annotation: probe.describe(),
                    outcome: outcome.clone(),
                    reason: verdict.to_string(),
                });
                outcome
            }
            Plan::Static(outcome, reason) => {
                ledger.static_pruned.push(PrunedCandidate {
                    annotation: probe.describe(),
                    outcome: outcome.clone(),
                    reason: reason.clone(),
                });
                outcome.clone()
            }
        })
        .collect()
}

/// Runs the full inference algorithm on one target: dependence check, the
/// three Table 3 models, and — if no policy-only annotation succeeds — the
/// bounded reduction search over the target's candidate variables and the
/// six operators. When [`InferConfig::prune`] is on and the target provides
/// a dependence summary, each candidate is first shown to the static
/// analyzer and skipped if it is proven to fail; with
/// [`InferConfig::static_prune`] also on and a [`InferTarget::loop_spec`]
/// available, the abstract interpreter rules first and can skip probes in
/// *both* directions (proved safe as well as proved unsound) without any
/// replay.
pub fn infer(target: &(dyn InferTarget + Sync), cfg: &InferConfig) -> InferReport {
    let reference = target.run_sequential();
    let seq_cost = sequential_cost(target, cfg);
    // Hard safety net: a parallel run re-executes at most `workers`× the
    // sequential work under the lock-step protocol, so anything beyond
    // workers × factor × sequential is a runaway.
    let work_budget = (seq_cost as f64 * cfg.timeout_factor * cfg.workers as f64) as u64;

    let summary = target.probe_summary();
    let dep = if summary.is_empty() {
        target.probe_dependences()
    } else {
        summary.report()
    };

    let budget_words = target.tracked_budget_words().unwrap_or(cfg.budget_words);
    let acfg = AnalyzeConfig {
        workers: cfg.workers,
        chunk: cfg.chunk,
        high_conflict_threshold: cfg.high_conflict_threshold,
        budget_words,
        ..AnalyzeConfig::default()
    };
    // The static tier: the abstract interpreter's summary of the target's
    // declared loop spec, evaluated once and consulted per model probe.
    let static_summary = if cfg.prune && cfg.static_prune {
        target.loop_spec().map(|spec| interpret(&spec))
    } else {
        None
    };
    // The analyzer's verdict for one candidate, or `Unknown` ("just run
    // it") when pruning is off. A reduction candidate is only simulated
    // when the summary knows which heap object the variable labels — the
    // reduction privatises that object, so its accesses are elided from
    // the simulated sets exactly as the runtime removes them from the real
    // tracked sets.
    let verdict_for = |model: Model, reduction: Option<&(String, RedOp)>| -> Verdict {
        if !cfg.prune {
            return Verdict::Unknown;
        }
        let elide: Vec<alter_heap::ObjId> = match reduction {
            None => Vec::new(),
            Some((var, _)) => match summary.labeled(var) {
                Some(obj) => vec![obj],
                None => return Verdict::Unknown,
            },
        };
        let params = model.exec_params(cfg.workers, cfg.chunk);
        predict(&summary, params.conflict, params.order, &elide, &acfg)
    };
    // Resolution plan for one candidate: the static tier rules first (its
    // proofs are two-sided and need no replay), the dynamic predictor
    // second. Reduction candidates are left to the dynamic tier — the
    // spec's reduction accesses describe the *unannotated* loop, so the
    // static verdict does not transfer once the variable is privatised.
    let plan_for = |model: Model, reduction: Option<&(String, RedOp)>| -> Plan {
        if reduction.is_none() {
            if let Some(st) = &static_summary {
                let params = model.exec_params(cfg.workers, cfg.chunk);
                match static_verdict(st, params.conflict, &acfg) {
                    StaticVerdict::ProvedSafe => {
                        return Plan::Static(
                            Outcome::Success,
                            "statically proved safe: no loop-carried dependences, \
                             chunk footprint within budget"
                                .to_owned(),
                        );
                    }
                    StaticVerdict::ProvedUnsound(v) => {
                        let outcome = match &v {
                            Verdict::HighConflicts { .. } => Outcome::HighConflicts,
                            _ => Outcome::OutOfMemory,
                        };
                        return Plan::Static(outcome, format!("statically proved unsound: {v}"));
                    }
                    StaticVerdict::Unknown => {}
                }
            }
        }
        Plan::from_dynamic(verdict_for(model, reduction))
    };
    let mut ledger = PruneLedger::default();
    let probe_index = AtomicU64::new(0);
    let make_probe = |model: Model, reduction: Option<(String, RedOp)>| {
        let mut probe = Probe::new(model, cfg.workers, cfg.chunk);
        probe.reduction = reduction;
        probe.budget_words = budget_words;
        probe.work_budget = Some(work_budget);
        probe.recorder = cfg.recorder.clone();
        probe.profile_phases = cfg.profile_phases;
        probe
    };

    let model_probes: Vec<(Probe, Plan)> = Model::TABLE3
        .into_iter()
        .map(|m| (make_probe(m, None), plan_for(m, None)))
        .collect();
    let mut model_outcomes = resolve_batch(
        target,
        &reference,
        &model_probes,
        cfg,
        &mut ledger,
        &probe_index,
    )
    .into_iter();
    let tls = model_outcomes.next().expect("three model probes");
    let out_of_order = model_outcomes.next().expect("three model probes");
    let stale_reads = model_outcomes.next().expect("three model probes");

    let mut valid_annotations = Vec::new();
    for ((probe, _), outcome) in model_probes.iter().zip([&tls, &out_of_order, &stale_reads]) {
        if outcome.is_success() {
            valid_annotations.push(format!("[{}]", probe.describe()));
        }
    }

    // "A search for a valid reduction is performed only if none of the
    // annotations of the form (P, ε) are valid" (§5). Dynamically-pruned
    // model probes keep the gate firing (their recorded outcomes are
    // failures); a statically-proved-safe probe suppresses it exactly as
    // its real execution would, because its recorded outcome is the
    // success the probe was proved to produce.
    let mut reductions = Vec::new();
    if !out_of_order.is_success() && !stale_reads.is_success() {
        let mut red_probes = Vec::new();
        let mut red_meta = Vec::new();
        for var in target.reduction_candidates() {
            for op in RedOp::ALL {
                for model in [Model::OutOfOrder, Model::StaleReads] {
                    let reduction = (var.clone(), op);
                    let plan = plan_for(model, Some(&reduction));
                    red_probes.push((make_probe(model, Some(reduction)), plan));
                    red_meta.push((model, var.clone(), op));
                }
            }
        }
        let outcomes = resolve_batch(
            target,
            &reference,
            &red_probes,
            cfg,
            &mut ledger,
            &probe_index,
        );
        for (((model, var, op), (probe, _)), outcome) in
            red_meta.into_iter().zip(&red_probes).zip(outcomes)
        {
            if outcome.is_success() {
                valid_annotations.push(format!("[{}]", probe.describe()));
            }
            reductions.push(ReductionResult {
                model,
                var,
                op,
                outcome,
            });
        }
    }

    InferReport {
        name: target.name().to_owned(),
        dep,
        tls,
        out_of_order,
        stale_reads,
        reductions,
        valid_annotations,
        pruned_candidates: ledger.pruned,
        static_pruned: ledger.static_pruned,
        probes_run: ledger.probes_run,
    }
}
