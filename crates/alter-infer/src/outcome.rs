//! Classification of probe outcomes (paper §5).
//!
//! "For each annotation, the reported outcome is one of the following:
//! success, failure ∈ (crash, timeout, high conflicts, output mismatch)."

use std::fmt;

/// The outcome of running one candidate annotation on one test input.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// The execution produced output matching the sequential reference
    /// (under the program-specific validator).
    Success,
    /// The program crashed (a panic in the loop body).
    Crash(String),
    /// The runtime ran out of memory tracking access sets — reported as a
    /// crash in the paper's Table 3 (AggloClust under TLS/OutOfOrder).
    OutOfMemory,
    /// Execution exceeded 10× the sequential cost (the paper's timeout).
    Timeout,
    /// More than half of all attempted commits failed — "correlated with
    /// performance degradation and hence we deem them as failures".
    HighConflicts,
    /// An output was produced but the validator rejected it.
    OutputMismatch,
}

impl Outcome {
    /// Whether the annotation is considered valid.
    pub fn is_success(&self) -> bool {
        matches!(self, Outcome::Success)
    }

    /// The short label used in Table 3 (`success`, `crash`, `timeout`,
    /// `h.c.`, `mismatch`). Out-of-memory aborts print as `crash`, as in
    /// the paper.
    pub fn short(&self) -> &'static str {
        match self {
            Outcome::Success => "success",
            Outcome::Crash(_) | Outcome::OutOfMemory => "crash",
            Outcome::Timeout => "timeout",
            Outcome::HighConflicts => "h.c.",
            Outcome::OutputMismatch => "mismatch",
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(Outcome::Success.short(), "success");
        assert_eq!(Outcome::Crash("x".into()).short(), "crash");
        assert_eq!(Outcome::OutOfMemory.short(), "crash");
        assert_eq!(Outcome::Timeout.short(), "timeout");
        assert_eq!(Outcome::HighConflicts.short(), "h.c.");
        assert_eq!(Outcome::OutputMismatch.short(), "mismatch");
    }

    #[test]
    fn only_success_is_success() {
        assert!(Outcome::Success.is_success());
        for o in [
            Outcome::Crash(String::new()),
            Outcome::OutOfMemory,
            Outcome::Timeout,
            Outcome::HighConflicts,
            Outcome::OutputMismatch,
        ] {
            assert!(!o.is_success());
        }
    }

    #[test]
    fn display_uses_short_labels() {
        assert_eq!(Outcome::HighConflicts.to_string(), "h.c.");
    }
}
