//! Chunk-factor tuning (paper §5, Figure 5).
//!
//! "After ascertaining valid annotations, an iterative doubling algorithm
//! is used to find an appropriate chunk factor. Starting from a candidate
//! value of 1 the chunk factor is iteratively doubled until a performance
//! degradation is seen over two successive increments. The candidate that
//! led to the best performance is then chosen."

use crate::target::{InferTarget, Model, Probe};
use alter_runtime::{quiet::quiet_panics, RedOp};

/// Result of the chunk-factor search.
#[derive(Clone, Debug)]
pub struct ChunkTuning {
    /// The chosen chunk factor.
    pub best: usize,
    /// The measured curve: `(chunk factor, simulated parallel time)` — the
    /// data behind Figure 5.
    pub curve: Vec<(usize, f64)>,
}

/// Runs the iterative-doubling chunk search for `model` (+ optional
/// reduction) with `workers` workers.
pub fn tune_chunk(
    target: &dyn InferTarget,
    model: Model,
    reduction: Option<(String, RedOp)>,
    workers: usize,
) -> ChunkTuning {
    let mut curve = Vec::new();
    let mut best = 1usize;
    let mut best_time = f64::INFINITY;
    let mut degradations = 0u32;
    let mut prev_time = f64::INFINITY;
    let mut cf = 1usize;
    while degradations < 2 && cf <= 1 << 14 {
        let mut probe = Probe::new(model, workers, cf);
        probe.reduction = reduction.clone();
        let time = match quiet_panics(|| target.run_probe(&probe)) {
            Ok(run) => run.clock.par_units,
            Err(_) => f64::INFINITY,
        };
        curve.push((cf, time));
        if time < best_time {
            best_time = time;
            best = cf;
        }
        if time > prev_time {
            degradations += 1;
        } else {
            degradations = 0;
        }
        prev_time = time;
        cf *= 2;
    }
    ChunkTuning { best, curve }
}
