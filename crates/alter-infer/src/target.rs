//! The interface between the inference engine and an instrumented program.
//!
//! A program exposes one target loop. The inference engine never looks
//! inside it: it only asks for sequential reference output, probe runs under
//! candidate configurations, a dependence check, and the list of scalar
//! variables a reduction annotation could name.

use alter_analyze::absint::LoopSpec;
use alter_runtime::{DepReport, ExecParams, LoopSummary, RedOp, RedVars, RunError, RunStats};
use alter_sim::SimClock;
use alter_trace::Recorder;
use std::sync::Arc;

/// The execution model a probe exercises — the columns of Table 3 plus
/// DOALL (used internally to measure sequential cost).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Model {
    /// Thread-level speculation: `RAW + InOrder` (sequential semantics).
    Tls,
    /// The `OutOfOrder` annotation: `RAW + OutOfOrder`.
    OutOfOrder,
    /// The `StaleReads` annotation: `WAW + OutOfOrder`.
    StaleReads,
    /// DOALL: no conflict checking.
    Doall,
}

impl Model {
    /// The three models reported in Table 3, in column order.
    pub const TABLE3: [Model; 3] = [Model::Tls, Model::OutOfOrder, Model::StaleReads];

    /// Parses a CLI/journal annotation token (`tls`, `outoforder`/`ooo`,
    /// `stalereads`/`stale`, `doall`), case-insensitively. The trace CLIs
    /// and the journal replay driver share this so recorded annotations
    /// round-trip.
    pub fn parse_token(s: &str) -> Option<Model> {
        match s.to_ascii_lowercase().as_str() {
            "tls" => Some(Model::Tls),
            "outoforder" | "ooo" => Some(Model::OutOfOrder),
            "stalereads" | "stale" => Some(Model::StaleReads),
            "doall" => Some(Model::Doall),
            _ => None,
        }
    }

    /// Base parameters for this model (Theorems 4.1–4.4).
    pub fn exec_params(self, workers: usize, chunk: usize) -> ExecParams {
        match self {
            Model::Tls => ExecParams::tls(workers, chunk),
            Model::OutOfOrder => ExecParams::from_annotation(
                &"[OutOfOrder]".parse().expect("static"),
                workers,
                chunk,
            ),
            Model::StaleReads => ExecParams::from_annotation(
                &"[StaleReads]".parse().expect("static"),
                workers,
                chunk,
            ),
            Model::Doall => ExecParams::doall(workers, chunk),
        }
    }
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Model::Tls => "TLS",
            Model::OutOfOrder => "OutOfOrder",
            Model::StaleReads => "StaleReads",
            Model::Doall => "DOALL",
        };
        f.write_str(s)
    }
}

/// One candidate configuration to try on the target loop.
#[derive(Clone)]
pub struct Probe {
    /// Execution model.
    pub model: Model,
    /// Optional reduction: `(variable name, operator)`.
    pub reduction: Option<(String, RedOp)>,
    /// Worker count.
    pub workers: usize,
    /// Chunk factor (the paper fixes 16 during inference).
    pub chunk: usize,
    /// Per-transaction tracked-memory budget, in words.
    pub budget_words: u64,
    /// Total cost budget (the 10×-sequential timeout), if any.
    pub work_budget: Option<u64>,
    /// Structured-event sink forwarded to the engine run.
    pub recorder: Option<Arc<dyn Recorder>>,
    /// Whether the engine may use the validation fast path (on by default;
    /// off only for A/B measurement — verdicts and traces are identical).
    pub fast_validation: bool,
    /// Whether the target should drive the loop with real threads
    /// ([`alter_runtime::Driver::threaded`]) instead of the sequential
    /// simulation of the workers. Either driver yields byte-identical
    /// traces; threading only changes wall-clock time.
    pub threaded: bool,
    /// Whether a threaded run reuses the persistent
    /// [`alter_runtime::WorkerPool`] (on by default; off falls back to a
    /// spawn-per-round scope, for A/B measurement only).
    pub worker_pool: bool,
    /// Whether the run uses the ticketed pipeline driver: the committer
    /// retires ticket *s* as soon as lane *s* delivers instead of waiting
    /// for the round barrier. Traces and outputs are byte-identical either
    /// way; only the (masked) stall/idle telemetry moves. Setting this
    /// implies a threaded pool run (see [`Probe::driver`]).
    pub pipelined: bool,
    /// Committer lookahead for the pipelined driver: 1 degenerates to the
    /// lock-step barrier, ≥ 2 streams the round. Ignored unless
    /// [`Probe::pipelined`] is set.
    pub pipeline_depth: usize,
    /// Whether the engine emits ticket-lifecycle events
    /// (`ticket_issued`/`ticket_validated`/`ticket_requeued`). Off by
    /// default so recorded traces stay byte-identical to previous releases;
    /// when on, every driver emits the identical event stream.
    pub trace_tickets: bool,
    /// Whether the engine may reuse unchanged snapshot pages between rounds
    /// (on by default; off re-clones the whole heap each round, for A/B
    /// measurement only — traces are identical either way).
    pub incremental_snapshots: bool,
    /// Whether the engine records each task's full tracked read/write sets
    /// into the trace (`task_sets` events) for the isolation sanitizer.
    /// Off by default: the payloads are large and recorded traces stay
    /// byte-identical to previous releases unless asked for.
    pub record_sets: bool,
    /// Whether the engine emits per-round `phase_profile` cost-unit events
    /// (the deterministic phase profiler). Off by default, for the same
    /// reason as `record_sets`: recorded traces stay byte-identical unless
    /// a profiling consumer opts in.
    pub profile_phases: bool,
    /// Wall-clock phase accumulator forwarded to the engine (informational
    /// mirror of the cost-unit profiler; never recorded in traces).
    pub wall_profile: Option<Arc<alter_trace::WallProfile>>,
    /// Heap shard count forwarded to the engine (default 1 — the unsharded
    /// layout). Traces and outputs are identical at every count; only the
    /// shard scan-economics counters move.
    pub shards: usize,
}

impl std::fmt::Debug for Probe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Probe")
            .field("model", &self.model)
            .field("reduction", &self.reduction)
            .field("workers", &self.workers)
            .field("chunk", &self.chunk)
            .field("budget_words", &self.budget_words)
            .field("work_budget", &self.work_budget)
            .field("recorder", &self.recorder.as_ref().map(|r| r.is_enabled()))
            .field("fast_validation", &self.fast_validation)
            .field("threaded", &self.threaded)
            .field("worker_pool", &self.worker_pool)
            .field("pipelined", &self.pipelined)
            .field("pipeline_depth", &self.pipeline_depth)
            .field("trace_tickets", &self.trace_tickets)
            .field("incremental_snapshots", &self.incremental_snapshots)
            .field("record_sets", &self.record_sets)
            .field("profile_phases", &self.profile_phases)
            .field("wall_profile", &self.wall_profile.is_some())
            .field("shards", &self.shards)
            .finish()
    }
}

impl Probe {
    /// A probe of `model` with the given geometry and effectively unlimited
    /// budgets.
    pub fn new(model: Model, workers: usize, chunk: usize) -> Self {
        Probe {
            model,
            reduction: None,
            workers,
            chunk,
            budget_words: u64::MAX,
            work_budget: None,
            recorder: None,
            fast_validation: true,
            threaded: false,
            worker_pool: true,
            pipelined: false,
            pipeline_depth: 4,
            trace_tickets: false,
            incremental_snapshots: true,
            record_sets: false,
            profile_phases: false,
            wall_profile: None,
            shards: 1,
        }
    }

    /// The loop driver this probe asks for: threaded when
    /// [`Probe::threaded`] or [`Probe::pipelined`] is set (the pipeline
    /// needs real worker lanes to overlap with the committer), the
    /// sequential round simulation otherwise. Targets should pass this to
    /// [`alter_runtime::LoopBuilder::run`] instead of hard-coding a driver.
    pub fn driver(&self) -> alter_runtime::Driver {
        if self.threaded || self.pipelined {
            alter_runtime::Driver::threaded()
        } else {
            alter_runtime::Driver::sequential()
        }
    }

    /// Resolves this probe into engine parameters, looking the reduction
    /// variable (if any) up in `reds`.
    ///
    /// # Panics
    ///
    /// Panics if the reduction names a variable absent from `reds` — probes
    /// are built from [`InferTarget::reduction_candidates`], so this is a
    /// target bug.
    pub fn exec_params(&self, reds: &RedVars) -> ExecParams {
        let mut p = self.model.exec_params(self.workers, self.chunk);
        p.budget_words = self.budget_words;
        p.work_budget = self.work_budget;
        p.recorder = self.recorder.clone();
        p.fast_validation = self.fast_validation;
        p.worker_pool = self.worker_pool;
        p.pipelined = self.pipelined;
        p.pipeline_depth = self.pipeline_depth.max(1);
        p.trace_tickets = self.trace_tickets;
        p.incremental_snapshots = self.incremental_snapshots;
        p.record_sets = self.record_sets;
        p.profile_phases = self.profile_phases;
        p.wall_profile = self.wall_profile.clone();
        p.shards = self.shards.max(1);
        if let Some((name, op)) = &self.reduction {
            let var = reds
                .lookup(name)
                .unwrap_or_else(|| panic!("unknown reduction candidate `{name}`"));
            p.reductions = vec![(var, *op)];
        }
        p
    }

    /// Human-readable annotation-style description, e.g.
    /// `StaleReads + Reduction(delta, +)`.
    pub fn describe(&self) -> String {
        match &self.reduction {
            None => self.model.to_string(),
            Some((name, op)) => format!("{} + Reduction({name}, {op})", self.model),
        }
    }
}

/// Output of one full program execution, compared by the program-specific
/// validator.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProgramOutput {
    /// Floating-point outputs (solution vectors, distances, …).
    pub floats: Vec<f64>,
    /// Integer outputs (counts, memberships, digests, …).
    pub ints: Vec<i64>,
}

impl ProgramOutput {
    /// Builds an output from float values only.
    pub fn from_floats(floats: Vec<f64>) -> Self {
        ProgramOutput {
            floats,
            ints: Vec::new(),
        }
    }

    /// Builds an output from integer values only.
    pub fn from_ints(ints: Vec<i64>) -> Self {
        ProgramOutput {
            floats: Vec::new(),
            ints,
        }
    }

    /// Approximate comparison: integers exactly, floats within `tol`
    /// relative error — "our program-specific output validation script …
    /// often made approximate comparisons between floating-point values"
    /// (§7.1).
    pub fn approx_eq(&self, other: &ProgramOutput, tol: f64) -> bool {
        if self.ints != other.ints || self.floats.len() != other.floats.len() {
            return false;
        }
        self.floats.iter().zip(&other.floats).all(|(a, b)| {
            let scale = a.abs().max(b.abs()).max(1.0);
            (a - b).abs() <= tol * scale
        })
    }
}

/// A completed probe run.
#[derive(Clone, Debug)]
pub struct ProbeRun {
    /// The program's output under the probe configuration.
    pub output: ProgramOutput,
    /// Aggregate runtime statistics (drives the high-conflict check and
    /// Table 4).
    pub stats: RunStats,
    /// Virtual-time accounting (drives the chunk-factor search and the
    /// speedup figures).
    pub clock: SimClock,
}

/// A program with one target loop, as seen by the inference engine.
///
/// Implementations must be deterministic: each probe starts from identical
/// program state (targets re-generate their input from a fixed seed), so
/// "a single test is sufficient to identify incorrect annotations" (§7.1).
pub trait InferTarget {
    /// Benchmark name (Table 2/3 row label).
    fn name(&self) -> &str;

    /// Runs the unmodified sequential program and returns its output.
    fn run_sequential(&self) -> ProgramOutput;

    /// Runs the program with the target loop under `probe`.
    ///
    /// # Errors
    ///
    /// Propagates the runtime's crash / out-of-memory / work-budget aborts.
    fn run_probe(&self, probe: &Probe) -> Result<ProbeRun, RunError>;

    /// Replays the loop sequentially into the full dependence-summary IR
    /// (see [`alter_runtime::summarize_dependences`]): per-location edges
    /// with iteration distances, access statistics, and per-iteration
    /// read/write sets. The analyzer consumes this to prune provably
    /// failing probes and to lint annotations.
    ///
    /// The default returns an empty summary, which disables analysis-based
    /// pruning for this target; override [`InferTarget::probe_dependences`]
    /// too in that case, or the Dep column will be empty as well.
    fn probe_summary(&self) -> LoopSummary {
        LoopSummary::default()
    }

    /// Replays the loop to detect loop-carried dependences (Table 3's Dep
    /// column). Defaults to collapsing [`InferTarget::probe_summary`]; only
    /// targets that cannot produce a summary need their own replay here.
    fn probe_dependences(&self) -> DepReport {
        self.probe_summary().report()
    }

    /// Scalar variables a reduction annotation may name.
    fn reduction_candidates(&self) -> Vec<String> {
        Vec::new()
    }

    /// Program-specific output validation. Defaults to approximate
    /// equality at 1e-6 relative tolerance.
    fn validate(&self, reference: &ProgramOutput, candidate: &ProgramOutput) -> bool {
        reference.approx_eq(candidate, 1e-6)
    }

    /// Per-transaction tracked-memory budget override, in words. Programs
    /// whose instrumented read sets exhaust memory (the paper's AggloClust
    /// under TLS/OutOfOrder, §7.1) model their machine's capacity here;
    /// `None` uses the engine default.
    fn tracked_budget_words(&self) -> Option<u64> {
        None
    }

    /// The declarative symbolic description of the target loop's accesses
    /// (see [`alter_analyze::absint::LoopSpec`]), over the same
    /// deterministic heap [`InferTarget::probe_summary`] replays. `None`
    /// (the default) disables the static pruning tier for this target; a
    /// provided spec is held to the `static ⊇ dynamic` contract by the
    /// cross-validation gate in `tests/absint.rs`.
    fn loop_spec(&self) -> Option<LoopSpec> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alter_runtime::{CommitOrder, ConflictPolicy, RedVal};

    #[test]
    fn model_params_match_theorems() {
        let p = Model::Tls.exec_params(4, 16);
        assert_eq!(
            (p.conflict, p.order),
            (ConflictPolicy::Raw, CommitOrder::InOrder)
        );
        let p = Model::OutOfOrder.exec_params(4, 16);
        assert_eq!(
            (p.conflict, p.order),
            (ConflictPolicy::Raw, CommitOrder::OutOfOrder)
        );
        let p = Model::StaleReads.exec_params(4, 16);
        assert_eq!(
            (p.conflict, p.order),
            (ConflictPolicy::Waw, CommitOrder::OutOfOrder)
        );
        let p = Model::Doall.exec_params(4, 16);
        assert_eq!(p.conflict, ConflictPolicy::None);
    }

    #[test]
    fn probe_resolves_reduction_against_registry() {
        let mut reds = RedVars::new();
        let d = reds.declare("delta", RedVal::F64(0.0));
        let mut probe = Probe::new(Model::StaleReads, 4, 16);
        probe.reduction = Some(("delta".into(), RedOp::Add));
        probe.work_budget = Some(1000);
        let p = probe.exec_params(&reds);
        assert_eq!(p.reductions, vec![(d, RedOp::Add)]);
        assert_eq!(p.work_budget, Some(1000));
        assert_eq!(probe.describe(), "StaleReads + Reduction(delta, +)");
        assert_eq!(Probe::new(Model::Tls, 2, 4).describe(), "TLS");
    }

    #[test]
    fn parse_token_accepts_cli_spellings() {
        assert_eq!(Model::parse_token("TLS"), Some(Model::Tls));
        assert_eq!(Model::parse_token("ooo"), Some(Model::OutOfOrder));
        assert_eq!(Model::parse_token("stale"), Some(Model::StaleReads));
        assert_eq!(Model::parse_token("doall"), Some(Model::Doall));
        assert_eq!(Model::parse_token("best"), None);
    }

    #[test]
    fn approx_eq_tolerates_small_float_drift() {
        let a = ProgramOutput::from_floats(vec![1.0, 1000.0]);
        let b = ProgramOutput::from_floats(vec![1.0 + 1e-9, 1000.0 + 1e-5]);
        assert!(a.approx_eq(&b, 1e-6));
        let c = ProgramOutput::from_floats(vec![1.0, 1001.0]);
        assert!(!a.approx_eq(&c, 1e-6));
    }

    #[test]
    fn approx_eq_requires_exact_ints_and_shapes() {
        let a = ProgramOutput::from_ints(vec![1, 2]);
        let b = ProgramOutput::from_ints(vec![1, 3]);
        assert!(!a.approx_eq(&b, 1.0));
        let c = ProgramOutput::from_floats(vec![0.0]);
        assert!(!a.approx_eq(&c, 1.0));
        assert!(a.approx_eq(&a.clone(), 0.0));
    }
}
