//! Automatic parallelization (paper §6, Table 1, third column).
//!
//! "In the final scenario … ALTER is applied as an autonomous
//! parallelization engine": infer the annotations, validate them against
//! the test suite, pick the most permissive valid one, tune the chunk
//! factor, and hand back a ready-to-run configuration — no human in the
//! loop. The paper stresses this is unsound-by-design ("testing as the
//! sole correctness criterion"); [`AutoDecision`] therefore carries the
//! full evidence so a human can audit it later, the assisted-parallelization
//! workflow.

use crate::chunk::tune_chunk;
use crate::engine::{infer, InferConfig, InferReport};
use crate::target::{InferTarget, Model, Probe};
use alter_runtime::RedOp;

/// The outcome of autonomous parallelization.
#[derive(Clone, Debug)]
pub struct AutoDecision {
    /// The full inference evidence (one Table 3 row).
    pub report: InferReport,
    /// The chosen configuration, if any annotation validated.
    pub chosen: Option<ChosenConfig>,
}

/// A validated, tuned loop configuration.
#[derive(Clone, Debug)]
pub struct ChosenConfig {
    /// Execution model.
    pub model: Model,
    /// Reduction, when the policy alone did not validate.
    pub reduction: Option<(String, RedOp)>,
    /// Chunk factor found by iterative doubling.
    pub chunk: usize,
    /// The annotation in concrete syntax, for the human audit trail.
    pub annotation: String,
}

impl ChosenConfig {
    /// Builds the probe that runs the loop under this configuration.
    pub fn probe(&self, workers: usize) -> Probe {
        let mut p = Probe::new(self.model, workers, self.chunk);
        p.reduction = self.reduction.clone();
        p
    }
}

/// Runs the full §6 pipeline on a target: inference, model selection,
/// chunk tuning.
///
/// Model preference order is StaleReads, then OutOfOrder, then TLS — the
/// most permissive valid annotation wins, because permissiveness is what
/// buys performance (StaleReads needs no read instrumentation; TLS adds
/// squashing). Reductions are taken from the search only when the bare
/// policy failed, and `+`/idempotent operators are preferred over `×`
/// (whose merge is the least robust, §4.2).
pub fn auto_parallelize(target: &(dyn InferTarget + Sync), cfg: &InferConfig) -> AutoDecision {
    let report = infer(target, cfg);

    let mut pick: Option<(Model, Option<(String, RedOp)>)> = None;
    if report.stale_reads.is_success() {
        pick = Some((Model::StaleReads, None));
    } else if report.out_of_order.is_success() {
        pick = Some((Model::OutOfOrder, None));
    } else {
        // Reduction search results, in preference order.
        const OP_PREFERENCE: [RedOp; 6] = [
            RedOp::Add,
            RedOp::Max,
            RedOp::Min,
            RedOp::And,
            RedOp::Or,
            RedOp::Mul,
        ];
        'outer: for model in [Model::StaleReads, Model::OutOfOrder] {
            for op in OP_PREFERENCE {
                if let Some(r) = report
                    .reductions
                    .iter()
                    .find(|r| r.model == model && r.op == op && r.outcome.is_success())
                {
                    pick = Some((model, Some((r.var.clone(), r.op))));
                    break 'outer;
                }
            }
        }
        if pick.is_none() && report.tls.is_success() {
            pick = Some((Model::Tls, None));
        }
    }

    let chosen = pick.map(|(model, reduction)| {
        let tuning = tune_chunk(target, model, reduction.clone(), cfg.workers);
        let annotation = match (&model, &reduction) {
            (Model::Tls, _) => "TLS (sequential semantics)".to_owned(),
            (m, None) => format!("[{m}]"),
            (m, Some((var, op))) => format!("[{m} + Reduction({var}, {op})]"),
        };
        ChosenConfig {
            model,
            reduction,
            chunk: tuning.best,
            annotation,
        }
    });

    AutoDecision { report, chosen }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::{ProbeRun, ProgramOutput};
    use alter_heap::{Heap, ObjData};
    use alter_runtime::{
        detect_dependences, BoundScalar, DepReport, RangeSpace, RedVal, RedVars, RunError,
    };
    use alter_sim::{simulate_loop, CostModel};

    /// A loop that needs `Reduction(total, +)`: the auto pipeline must pick
    /// StaleReads with that reduction and a chunk factor > 1.
    struct NeedsReduction;

    impl InferTarget for NeedsReduction {
        fn name(&self) -> &str {
            "needs-reduction"
        }
        fn run_sequential(&self) -> ProgramOutput {
            ProgramOutput::from_ints(vec![(0..256).sum()])
        }
        fn run_probe(&self, probe: &Probe) -> Result<ProbeRun, RunError> {
            let mut heap = Heap::new();
            let mut reds = RedVars::new();
            let total = BoundScalar::declare(&mut heap, &mut reds, "total", RedVal::I64(0));
            let params = probe.exec_params(&reds);
            let was_reduced = !params.reductions.is_empty();
            let (stats, clock) = simulate_loop(
                &mut heap,
                &mut reds,
                &mut RangeSpace::new(0, 256),
                &params,
                &CostModel::default(),
                |ctx, i| {
                    ctx.tx.work(10);
                    total.add(ctx, i as i64);
                },
            )?;
            let v = total.seq_get_sync(&mut heap, &mut reds, was_reduced);
            Ok(ProbeRun {
                output: ProgramOutput::from_ints(vec![v.as_i64()]),
                stats,
                clock,
            })
        }
        fn probe_dependences(&self) -> DepReport {
            let mut heap = Heap::new();
            let mut reds = RedVars::new();
            let total = BoundScalar::declare(&mut heap, &mut reds, "total", RedVal::I64(0));
            detect_dependences(&mut heap, &mut RangeSpace::new(0, 256), move |ctx, i| {
                total.add(ctx, i as i64);
            })
        }
        fn reduction_candidates(&self) -> Vec<String> {
            vec!["total".into()]
        }
    }

    /// A loop nothing can parallelize (order-sensitive, exact validator,
    /// permanent conflicts).
    struct Hopeless;

    impl InferTarget for Hopeless {
        fn name(&self) -> &str {
            "hopeless"
        }
        fn run_sequential(&self) -> ProgramOutput {
            // x_{i+1} = 3 x_i + 1 starting from 1, i.e. order-critical.
            let mut x = 1i64;
            for _ in 0..64 {
                x = x.wrapping_mul(3).wrapping_add(1);
            }
            ProgramOutput::from_ints(vec![x])
        }
        fn run_probe(&self, probe: &Probe) -> Result<ProbeRun, RunError> {
            let mut heap = Heap::new();
            let mut reds = RedVars::new();
            let cell = heap.alloc(ObjData::scalar_i64(1));
            let params = probe.exec_params(&reds);
            let (stats, clock) = simulate_loop(
                &mut heap,
                &mut reds,
                &mut RangeSpace::new(0, 64),
                &params,
                &CostModel::default(),
                |ctx, _| {
                    let v = ctx.tx.read_i64(cell, 0);
                    ctx.tx.write_i64(cell, 0, v.wrapping_mul(3).wrapping_add(1));
                },
            )?;
            Ok(ProbeRun {
                output: ProgramOutput::from_ints(vec![heap.get(cell).i64s()[0]]),
                stats,
                clock,
            })
        }
        fn probe_dependences(&self) -> DepReport {
            DepReport {
                raw: true,
                waw: true,
                war: true,
            }
        }
    }

    #[test]
    fn auto_picks_stale_reads_with_the_add_reduction() {
        let decision = auto_parallelize(&NeedsReduction, &InferConfig::default());
        let chosen = decision.chosen.expect("a configuration must validate");
        assert_eq!(chosen.model, Model::StaleReads);
        assert_eq!(
            chosen.reduction,
            Some(("total".to_owned(), RedOp::Add)),
            "+ preferred over any other validating operator"
        );
        assert!(chosen.chunk >= 1);
        assert!(chosen.annotation.contains("Reduction(total, +)"));
        let probe = chosen.probe(4);
        assert_eq!(probe.chunk, chosen.chunk);
    }

    #[test]
    fn auto_declines_hopeless_loops() {
        let decision = auto_parallelize(&Hopeless, &InferConfig::default());
        assert!(
            decision.chosen.is_none(),
            "nothing validates: {:?}",
            decision.report.valid_annotations
        );
        assert!(decision.report.dep.any());
    }
}
