//! AggloClust — agglomerative clustering over an `ALTERList` (the
//! branch-and-bound dwarf, adapted from Lonestar as in the paper, which
//! also simplifies the original).
//!
//! Active clusters live in an `AlterList`; each pass iterates over the
//! captured node sequence, and an iteration merges its cluster with its
//! nearest neighbour when the two are *mutual* nearest neighbours (the
//! classic reciprocal-NN agglomeration rule, which makes the result robust
//! to iteration order). Finding the nearest neighbour scans every live
//! cluster — a large, element-granular read set. That is exactly what
//! kills the read-tracking models: "the machine runs out of memory (due to
//! very large read sets)" under TLS and OutOfOrder (§7.1, reported as
//! *crash* in Table 3), while StaleReads tracks only the small merge write
//! sets and succeeds.

use crate::common::{rng, uniform_f64s, Benchmark, Scale};
use alter_analyze::absint::{AccessKind, LoopSpec, Member, Words};
use alter_collections::AlterList;
use alter_heap::{Heap, ObjData, ObjId};
use alter_infer::{InferTarget, Model, Probe, ProbeRun, ProgramOutput};
use alter_runtime::{
    summarize_dependences, LoopSummary, RedOp, RedVars, RunError, RunStats, SeqSpace, TxCtx,
};
use alter_sim::{CostModel, SimClock, SimObserver};

// Cluster object layout: [0] = x·size, [1] = y·size, [2] = size,
// [3] = accumulated merge cost of this cluster's subtree (all f64).
const SX: usize = 0;
const SY: usize = 1;
const SZ: usize = 2;
const SCOST: usize = 3;

/// The agglomerative-clustering benchmark.
#[derive(Clone, Debug)]
pub struct AggloClust {
    name: &'static str,
    points: usize,
    /// Stop when this many clusters remain.
    target: usize,
    max_passes: usize,
    seed: u64,
}

impl AggloClust {
    /// The benchmark at the given scale (the paper clusters 100k/1M
    /// points).
    pub fn new(scale: Scale) -> Self {
        let points = match scale {
            Scale::Inference => 384,
            Scale::Paper => 1536,
        };
        AggloClust {
            name: "AggloClust",
            points,
            target: points / 8,
            max_passes: 64,
            seed: 0x1234,
        }
    }

    /// Deterministic 2D points.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let mut r = rng(self.seed);
        let xs = uniform_f64s(&mut r, self.points, 0.0, 100.0);
        let ys = uniform_f64s(&mut r, self.points, 0.0, 100.0);
        xs.into_iter().zip(ys).collect()
    }

    fn dist2(a: (f64, f64, f64), b: (f64, f64, f64)) -> f64 {
        let ax = a.0 / a.2;
        let ay = a.1 / a.2;
        let bx = b.0 / b.2;
        let by = b.1 / b.2;
        (ax - bx) * (ax - bx) + (ay - by) * (ay - by)
    }

    /// Sequential reference: reciprocal-nearest-neighbour agglomeration
    /// until `target` clusters remain. Returns total within-merge cost and
    /// final cluster count.
    pub fn run_sequential_raw(&self) -> (f64, usize) {
        let mut clusters: Vec<(f64, f64, f64)> = self
            .points()
            .into_iter()
            .map(|(x, y)| (x, y, 1.0))
            .collect();
        let mut merge_cost = 0.0;
        let mut passes = 0;
        while clusters.len() > self.target && passes < self.max_passes {
            let nearest: Vec<usize> = (0..clusters.len())
                .map(|i| {
                    let mut best = usize::MAX;
                    let mut best_d = f64::INFINITY;
                    for j in 0..clusters.len() {
                        if j != i {
                            let d = Self::dist2(clusters[i], clusters[j]);
                            if d < best_d {
                                best_d = d;
                                best = j;
                            }
                        }
                    }
                    best
                })
                .collect();
            let mut dead = vec![false; clusters.len()];
            for i in 0..clusters.len() {
                let j = nearest[i];
                // Reciprocal pair, merged once (lower index wins).
                if j != usize::MAX && nearest[j] == i && i < j && !dead[i] && !dead[j] {
                    merge_cost += Self::dist2(clusters[i], clusters[j]).sqrt();
                    clusters[i] = (
                        clusters[i].0 + clusters[j].0,
                        clusters[i].1 + clusters[j].1,
                        clusters[i].2 + clusters[j].2,
                    );
                    dead[j] = true;
                }
            }
            let mut k = 0;
            clusters.retain(|_| {
                let keep = !dead[k];
                k += 1;
                keep
            });
            passes += 1;
        }
        (merge_cost, clusters.len())
    }

    fn read_cluster(ctx: &mut TxCtx<'_>, obj: ObjId) -> (f64, f64, f64) {
        // Element-granular reads: this is the pointer-chasing scan whose
        // tracked read set blows up under RAW policies.
        (
            ctx.tx.read_f64(obj, SX),
            ctx.tx.read_f64(obj, SY),
            ctx.tx.read_f64(obj, SZ),
        )
    }

    /// Runs the full program under `probe`; returns (merge cost, final
    /// cluster count, stats, clock).
    ///
    /// # Errors
    ///
    /// Propagates runtime aborts — including the out-of-memory abort on
    /// oversized tracked read sets.
    #[allow(clippy::type_complexity)]
    pub fn run(&self, probe: &Probe) -> Result<(f64, usize, RunStats, SimClock), RunError> {
        let mut heap = Heap::new();
        let mut reds = RedVars::new();
        let list: AlterList<ObjId> = AlterList::new(&mut heap);
        for (x, y) in self.points() {
            let obj = heap.alloc(ObjData::F64(vec![x, y, 1.0, 0.0]));
            list.push_back(&mut heap, obj);
        }
        let params = probe.exec_params(&reds);
        let model = self.cost_model();
        let mut obs = SimObserver::new(&model, params.workers);
        let mut stats = RunStats::default();

        let mut passes = 0;
        while list.len(&heap) > self.target && passes < self.max_passes {
            let nodes = list.node_ids(&heap);
            let body = |ctx: &mut TxCtx<'_>, raw: u64| {
                let node = ObjId::from_index(raw as u32);
                if !ctx.tx.is_live(node) {
                    return; // concurrently merged away
                }
                let me_obj = list.value(ctx, node);
                let me = Self::read_cluster(ctx, me_obj);
                // Scan the captured node sequence for my nearest live
                // neighbour.
                let mut best: Option<(ObjId, ObjId, (f64, f64, f64))> = None;
                let mut best_d = f64::INFINITY;
                for &other_raw in &nodes {
                    let other = ObjId::from_index(other_raw as u32);
                    if other == node || !ctx.tx.is_live(other) {
                        continue;
                    }
                    let obj = list.value(ctx, other);
                    let c = Self::read_cluster(ctx, obj);
                    let d = Self::dist2(me, c);
                    ctx.tx.work(6);
                    if d < best_d {
                        best_d = d;
                        best = Some((other, obj, c));
                    }
                }
                let Some((other_node, other_obj, other)) = best else {
                    return;
                };
                // Mutual-nearest check: is my cluster the nearest of my
                // nearest? (Scan again from its perspective.)
                let mut their_best = f64::INFINITY;
                let mut their_best_node = node;
                for &cand_raw in &nodes {
                    let cand = ObjId::from_index(cand_raw as u32);
                    if cand == other_node || !ctx.tx.is_live(cand) {
                        continue;
                    }
                    let obj = list.value(ctx, cand);
                    let c = Self::read_cluster(ctx, obj);
                    ctx.tx.work(6);
                    let d = Self::dist2(other, c);
                    if d < their_best {
                        their_best = d;
                        their_best_node = cand;
                    }
                }
                // Lower node index performs the merge to avoid double work.
                if their_best_node == node && node.index() < other_node.index() {
                    let cost = Self::dist2(me, other).sqrt();
                    // Fold the absorbed cluster's subtree cost into the
                    // survivor — a private write, so merges of disjoint
                    // pairs never contend on a shared accumulator.
                    let other_cost = ctx.tx.read_f64(other_obj, SCOST);
                    ctx.tx.update_f64s(me_obj, 0, 4, |c| {
                        c[SX] += other.0;
                        c[SY] += other.1;
                        c[SZ] += other.2;
                        c[SCOST] += other_cost + cost;
                    });
                    list.remove(ctx, other_node);
                    ctx.tx.free(other_obj);
                }
            };
            let pass_stats = alter_runtime::run_loop_observed(
                &mut heap,
                &mut reds,
                &mut SeqSpace::new(nodes.clone()),
                &params,
                probe.driver(),
                body,
                &mut obs,
            )?;
            stats.absorb(&pass_stats);
            passes += 1;
            if pass_stats.iterations == 0 {
                break;
            }
        }
        let merge_cost: f64 = list
            .node_ids(&heap)
            .iter()
            .map(|&raw| {
                let node = ObjId::from_index(raw as u32);
                let obj = ObjId::from_i64(heap.get(node).i64s()[0]);
                heap.get(obj).f64s()[SCOST]
            })
            .sum();
        let remaining = list.len(&heap);
        Ok((merge_cost, remaining, stats, obs.into_clock()))
    }
}

impl InferTarget for AggloClust {
    fn name(&self) -> &str {
        self.name
    }

    fn run_sequential(&self) -> ProgramOutput {
        let (cost, remaining) = self.run_sequential_raw();
        ProgramOutput {
            floats: vec![cost],
            ints: vec![remaining as i64],
        }
    }

    fn run_probe(&self, probe: &Probe) -> Result<ProbeRun, RunError> {
        let (cost, remaining, stats, clock) = self.run(probe)?;
        Ok(ProbeRun {
            output: ProgramOutput {
                floats: vec![cost],
                ints: vec![remaining as i64],
            },
            stats,
            clock,
        })
    }

    fn probe_summary(&self) -> LoopSummary {
        // One pass at chunk 1 exhibits the structural dependences: the
        // merge-cost cell and the cluster scans. The replay runs at the
        // full point count so the summarised read-set footprint matches
        // what a real probe would have to track against its memory budget.
        let mut heap = Heap::new();
        let list: AlterList<ObjId> = AlterList::new(&mut heap);
        for (x, y) in self.points() {
            let obj = heap.alloc(ObjData::F64(vec![x, y, 1.0, 0.0]));
            list.push_back(&mut heap, obj);
        }
        let nodes = list.node_ids(&heap);
        let nodes2 = nodes.clone();
        let body = move |ctx: &mut TxCtx<'_>, raw: u64| {
            let node = ObjId::from_index(raw as u32);
            if !ctx.tx.is_live(node) {
                return;
            }
            let obj = list.value(ctx, node);
            let me = Self::read_cluster(ctx, obj);
            let mut best_d = f64::INFINITY;
            for &other_raw in &nodes2 {
                let other = ObjId::from_index(other_raw as u32);
                if other != node && ctx.tx.is_live(other) {
                    let o = list.value(ctx, other);
                    let c = Self::read_cluster(ctx, o);
                    best_d = best_d.min(Self::dist2(me, c));
                }
            }
            ctx.tx.write_f64(obj, SZ, me.2); // touch own cluster
        };
        summarize_dependences(&mut heap, &mut SeqSpace::new(nodes), body)
    }

    fn loop_spec(&self) -> Option<LoopSpec> {
        // Mirror `probe_summary`'s heap construction so ObjIds line up.
        let mut heap = Heap::new();
        let list: AlterList<ObjId> = AlterList::new(&mut heap);
        let mut clusters = Vec::new();
        for (x, y) in self.points() {
            let obj = heap.alloc(ObjData::F64(vec![x, y, 1.0, 0.0]));
            list.push_back(&mut heap, obj);
            clusters.push(obj);
        }
        let nodes: Vec<ObjId> = list
            .node_ids(&heap)
            .into_iter()
            .map(|raw| ObjId::from_index(raw as u32))
            .collect();
        let mut spec = LoopSpec::new(nodes.len() as u64, heap.high_water());
        // The nearest-neighbour scan reads every node's value word and
        // every cluster's coordinates each iteration — the unconditional
        // whole-region read set whose tracked footprint provably exceeds
        // the budget under RAW policies (§7.1's out-of-memory crash) —
        // while only the iteration's own cluster is written.
        let node_r = spec.region("nodes", nodes, 3);
        spec.access(
            node_r,
            Member::All,
            Words::Range { lo: 0, hi: 1 },
            AccessKind::Read,
        );
        let clus_r = spec.region("clusters", clusters, 4);
        spec.access(
            clus_r,
            Member::All,
            Words::Range { lo: 0, hi: 3 },
            AccessKind::Read,
        );
        spec.access(
            clus_r,
            Member::Each,
            Words::Range { lo: 2, hi: 3 },
            AccessKind::Write,
        );
        Some(spec)
    }

    fn validate(&self, reference: &ProgramOutput, candidate: &ProgramOutput) -> bool {
        // Merge order may differ, so passes end at slightly different
        // cluster counts; reciprocal-NN agglomeration keeps the dendrogram
        // cost stable. Accept a couple of clusters of slack and a 10% cost
        // band.
        let (rc, cc) = (reference.ints[0], candidate.ints[0]);
        if (rc - cc).abs() > 2 {
            return false;
        }
        let (r, c) = (reference.floats[0], candidate.floats[0]);
        (r - c).abs() <= 0.10 * r.abs().max(1.0)
    }

    fn tracked_budget_words(&self) -> Option<u64> {
        // The paper's machine exhausts memory tracking AggloClust's read
        // sets; our model caps per-transaction tracking below one full
        // cluster scan (~3 words per cluster, twice per iteration), so
        // RAW-tracking models abort the same way while the write-only
        // StaleReads sets stay tiny.
        Some((self.points as u64) * 3)
    }
}

impl Benchmark for AggloClust {
    fn loop_weight(&self) -> f64 {
        0.89 // Table 2
    }

    fn chunk_factor(&self) -> usize {
        16 // Table 4: AggloClust cf = 64 at 1M points; scaled down
    }

    fn best_config(&self) -> (Model, Option<(String, RedOp)>) {
        (Model::StaleReads, None)
    }

    fn cost_model(&self) -> CostModel {
        CostModel::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alter_infer::{infer, InferConfig, Outcome};

    fn tiny() -> AggloClust {
        AggloClust {
            name: "AggloClust",
            points: 96,
            target: 12,
            max_passes: 64,
            seed: 9,
        }
    }

    #[test]
    fn sequential_reaches_target_cluster_count() {
        let a = tiny();
        let (cost, remaining) = a.run_sequential_raw();
        assert!(remaining <= 12 + 4, "remaining {remaining}");
        assert!(cost > 0.0);
    }

    #[test]
    fn stale_reads_succeeds_and_matches() {
        let a = tiny();
        let seq = a.run_sequential();
        let run = a.run_probe(&Probe::new(Model::StaleReads, 4, 4)).unwrap();
        assert!(
            a.validate(&seq, &run.output),
            "seq {:?} vs stale {:?}",
            seq,
            run.output
        );
    }

    #[test]
    fn raw_models_crash_on_read_set_blowup() {
        let a = tiny();
        let mut probe = Probe::new(Model::OutOfOrder, 4, 4);
        probe.budget_words = a.tracked_budget_words().unwrap();
        let err = alter_runtime::quiet::quiet_panics(|| a.run_probe(&probe)).unwrap_err();
        assert!(matches!(err, RunError::OutOfMemory { .. }), "{err}");
    }

    #[test]
    fn inference_matches_table3_row() {
        let a = tiny();
        let report = infer(
            &a,
            &InferConfig {
                workers: 4,
                chunk: 4,
                ..Default::default()
            },
        );
        assert!(report.dep.any());
        assert_eq!(report.tls, Outcome::OutOfMemory, "tls: {}", report.tls);
        assert_eq!(
            report.out_of_order,
            Outcome::OutOfMemory,
            "ooo: {}",
            report.out_of_order
        );
        assert!(
            report.stale_reads.is_success(),
            "stale: {}",
            report.stale_reads
        );
        assert_eq!(report.tls.short(), "crash");
    }
}
