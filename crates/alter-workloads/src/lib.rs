//! # alter-workloads — the twelve evaluation loops
//!
//! Rust re-implementations of the benchmarks in Table 2 of the paper (eight
//! Berkeley dwarfs + four STAMP applications), each with a deterministic
//! input generator, a plain-Rust sequential reference, an ALTER-parallel
//! version written against the transactional heap, and a program-specific
//! output validator. Every workload implements
//! [`alter_infer::InferTarget`] (for Table 3) and [`Benchmark`] (for the
//! speedup figures).
#![warn(missing_docs)]

pub mod agglo;
pub mod barnes_hut;
pub mod common;
pub mod fft;
pub mod floyd;
pub mod gauss_seidel;
pub mod genome;
pub mod hmm;
pub mod kmeans;
pub mod labyrinth;
pub mod manual;
pub mod sg3d;
pub mod ssca2;

pub use common::{Benchmark, Scale};

/// All twelve evaluation benchmarks in Table 2/3 row order.
pub fn all_benchmarks(scale: Scale) -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(genome::Genome::new(scale)),
        Box::new(ssca2::Ssca2::new(scale)),
        Box::new(kmeans::KMeans::new(scale)),
        Box::new(labyrinth::Labyrinth::new(scale)),
        Box::new(agglo::AggloClust::new(scale)),
        Box::new(gauss_seidel::GaussSeidel::dense(scale)),
        Box::new(gauss_seidel::GaussSeidel::sparse(scale)),
        Box::new(floyd::Floyd::new(scale)),
        Box::new(sg3d::Sg3d::new(scale)),
        Box::new(barnes_hut::BarnesHut::new(scale)),
        Box::new(fft::Fft::new(scale)),
        Box::new(hmm::Hmm::new(scale)),
    ]
}

/// Case-insensitive benchmark lookup, ignoring `-`/`_`, so `k-means`,
/// `kmeans` and `K-means` all resolve. The CLIs and the replay driver share
/// this so a journal's recorded workload name round-trips through lookup.
pub fn find_benchmark(name: &str) -> Option<Box<dyn Benchmark>> {
    let norm = |s: &str| {
        s.chars()
            .filter(|c| *c != '-' && *c != '_')
            .flat_map(char::to_lowercase)
            .collect::<String>()
    };
    let want = norm(name);
    all_benchmarks(Scale::Inference)
        .into_iter()
        .find(|b| norm(b.name()) == want)
}
