//! Genome — the first step of STAMP's genome sequencer: "remove duplicate
//! sequences" by inserting every segment into a shared hash set.
//!
//! Every insert reads a bucket and then writes it, so "all variables that
//! are read in the loop are also written to. Hence it is sufficient to
//! check for WAW conflicts alone and no read instrumentation is required"
//! (§7.1) — StaleReads and OutOfOrder produce identical executions, but
//! StaleReads runs faster because it skips read tracking (Figure 6). TLS
//! also succeeds (Genome is the paper's one speculation-friendly
//! dependence-carrying loop), at slightly lower speed than OutOfOrder.

use crate::common::{rng, Benchmark, Scale};
use alter_analyze::absint::{AccessKind, LoopSpec, Member, Words};
use alter_collections::AlterHashSet;
use alter_heap::{Heap, ObjId};
use alter_infer::{InferTarget, Model, Probe, ProbeRun, ProgramOutput};
use alter_runtime::{
    summarize_dependences, LoopSummary, RangeSpace, RedOp, RedVars, RunError, RunStats, TxCtx,
};
use alter_sim::{CostModel, SimClock, SimObserver};

/// The Genome segment-deduplication benchmark.
#[derive(Clone, Debug)]
pub struct Genome {
    name: &'static str,
    segments: usize,
    distinct: usize,
    buckets: usize,
    bucket_cap: usize,
    seed: u64,
}

impl Genome {
    /// The benchmark at the given scale (the paper deduplicates 4M/16M
    /// segments).
    pub fn new(scale: Scale) -> Self {
        // Buckets vastly outnumber per-chunk inserts, as in any sized
        // hash table: bucket collisions between concurrent chunks — i.e.
        // conflicts — stay rare (the paper measures a 0.2% retry rate).
        let (segments, buckets) = match scale {
            Scale::Inference => (2_048, 16_384),
            Scale::Paper => (16_384, 131_072),
        };
        Genome {
            name: "Genome",
            segments,
            distinct: segments / 2,
            buckets,
            bucket_cap: 8,
            seed: 0x6e0e,
        }
    }

    /// Deterministic segment stream with duplicates (each distinct segment
    /// appears about twice — the genome's overlapping reads).
    pub fn stream(&self) -> Vec<i64> {
        let mut r = rng(self.seed);
        (0..self.segments)
            .map(|_| r.gen_range(0..self.distinct as i64) * 0x9e37 + 17)
            .collect()
    }

    /// Sequential dedup via `std` collections.
    pub fn run_sequential_raw(&self) -> Vec<i64> {
        let mut set: Vec<i64> = self.stream().to_vec();
        set.sort_unstable();
        set.dedup();
        set
    }

    fn body<'a>(
        &self,
        stream: &'a [i64],
        set: AlterHashSet,
    ) -> impl Fn(&mut TxCtx<'_>, u64) + Sync + 'a {
        move |ctx, i| {
            ctx.tx.work(48); // hash and compare a 16-mer segment
            set.insert(ctx, stream[i as usize]);
        }
    }

    /// Runs the dedup loop under `probe`.
    ///
    /// # Errors
    ///
    /// Propagates runtime aborts.
    #[allow(clippy::type_complexity)]
    pub fn run(&self, probe: &Probe) -> Result<(Vec<i64>, RunStats, SimClock), RunError> {
        let stream = self.stream();
        let mut heap = Heap::new();
        let mut reds = RedVars::new();
        let set = AlterHashSet::new(&mut heap, self.buckets, self.bucket_cap);
        let params = probe.exec_params(&reds);
        let model = self.cost_model();
        let mut obs = SimObserver::new(&model, params.workers);
        let body = self.body(&stream, set);
        let stats = alter_runtime::run_loop_observed(
            &mut heap,
            &mut reds,
            &mut RangeSpace::new(0, stream.len() as u64),
            &params,
            probe.driver(),
            body,
            &mut obs,
        )?;
        let mut keys = set.seq_keys(&heap);
        keys.sort_unstable();
        Ok((keys, stats, obs.into_clock()))
    }
}

impl InferTarget for Genome {
    fn name(&self) -> &str {
        self.name
    }

    fn run_sequential(&self) -> ProgramOutput {
        ProgramOutput::from_ints(self.run_sequential_raw())
    }

    fn run_probe(&self, probe: &Probe) -> Result<ProbeRun, RunError> {
        let (keys, stats, clock) = self.run(probe)?;
        Ok(ProbeRun {
            output: ProgramOutput::from_ints(keys),
            stats,
            clock,
        })
    }

    fn probe_summary(&self) -> LoopSummary {
        let stream = self.stream();
        let mut heap = Heap::new();
        let set = AlterHashSet::new(&mut heap, self.buckets, self.bucket_cap);
        let body = self.body(&stream, set);
        summarize_dependences(
            &mut heap,
            &mut RangeSpace::new(0, stream.len() as u64),
            body,
        )
    }

    fn loop_spec(&self) -> Option<LoopSpec> {
        // Mirror `probe_summary`'s heap construction so ObjIds line up.
        let mut heap = Heap::new();
        let set = AlterHashSet::new(&mut heap, self.buckets, self.bucket_cap);
        let buckets: Vec<ObjId> = heap
            .get(set.directory())
            .i64s()
            .iter()
            .map(|&raw| ObjId::from_i64(raw))
            .collect();
        let bucket_words = (2 + self.bucket_cap.max(1)) as u32;
        let mut spec = LoopSpec::new(self.segments as u64, heap.high_water());
        // Each insert hashes to one data-dependent bucket: a directory
        // read, a whole-bucket read, and a conditional write of the
        // count/key/overflow words. Overflow chains are allocated mid-loop.
        let dir_r = spec.region(
            "directory",
            vec![set.directory()],
            set.bucket_count() as u32,
        );
        spec.access(
            dir_r,
            Member::At(0),
            Words::Unknown {
                bound: set.bucket_count() as u32,
            },
            AccessKind::Read,
        );
        let buck_r = spec.region("buckets", buckets, bucket_words);
        spec.access(
            buck_r,
            Member::Some,
            Words::Range {
                lo: 0,
                hi: bucket_words,
            },
            AccessKind::Read,
        );
        spec.access_if(
            buck_r,
            Member::Some,
            Words::Range {
                lo: 0,
                hi: bucket_words,
            },
            AccessKind::Write,
        );
        spec.allocates();
        Some(spec)
    }
}

impl Benchmark for Genome {
    fn loop_weight(&self) -> f64 {
        0.89 // Table 2
    }

    fn chunk_factor(&self) -> usize {
        16 // the paper tunes 4096 on 16M segments; scaled to our input
    }

    fn best_config(&self) -> (Model, Option<(String, RedOp)>) {
        (Model::StaleReads, None)
    }

    fn cost_model(&self) -> CostModel {
        CostModel::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alter_infer::{infer, InferConfig};

    fn tiny() -> Genome {
        Genome {
            name: "Genome",
            segments: 512,
            distinct: 256,
            buckets: 128,
            bucket_cap: 6,
            seed: 6,
        }
    }

    #[test]
    fn sequential_dedup_counts() {
        let g = tiny();
        let keys = g.run_sequential_raw();
        assert!(keys.len() > 100 && keys.len() <= 256);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn all_three_models_succeed() {
        let g = tiny();
        let report = infer(
            &g,
            &InferConfig {
                workers: 4,
                chunk: 8,
                ..Default::default()
            },
        );
        assert!(report.dep.any(), "bucket RMW is a loop-carried dep");
        assert!(report.tls.is_success(), "tls: {}", report.tls);
        assert!(
            report.out_of_order.is_success(),
            "ooo: {}",
            report.out_of_order
        );
        assert!(
            report.stale_reads.is_success(),
            "stale: {}",
            report.stale_reads
        );
    }

    #[test]
    fn stale_reads_beats_out_of_order_in_simulated_time() {
        // Figure 6's mechanism: WAW needs no read instrumentation.
        let g = tiny();
        let stale = g.run(&Probe::new(Model::StaleReads, 4, 8)).unwrap().2;
        let ooo = g.run(&Probe::new(Model::OutOfOrder, 4, 8)).unwrap().2;
        assert!(
            stale.par_units < ooo.par_units,
            "stale {:.0} !< ooo {:.0}",
            stale.par_units,
            ooo.par_units
        );
    }

    #[test]
    fn parallel_dedup_is_exact() {
        let g = tiny();
        let seq = g.run_sequential_raw();
        for model in [Model::Tls, Model::OutOfOrder, Model::StaleReads] {
            let (keys, _, _) = g.run(&Probe::new(model, 4, 8)).unwrap();
            assert_eq!(keys, seq, "{model}");
        }
    }
}
