//! BarnesHut — the N-body dwarf (Olden's implementation), parallelizing
//! the force-computation loop over an `ALTERList` of bodies.
//!
//! Each timestep rebuilds the quadtree sequentially (it is loop-invariant
//! input to the force loop, like the paper's tree), then the parallel loop
//! walks the list of bodies: each iteration reads the shared tree, computes
//! the approximate force on its body, and writes that body's own state —
//! disjoint writes, no loop-carried dependences (Table 3: Dep = No), so
//! every model succeeds and the speedup is near-linear (Figure 13).

use crate::common::{rng, uniform_f64s, Benchmark, Scale};
use alter_analyze::absint::{AccessKind, LoopSpec, Member, Words};
use alter_collections::AlterList;
use alter_heap::{Heap, ObjData, ObjId};
use alter_infer::{InferTarget, Model, Probe, ProbeRun, ProgramOutput};
use alter_runtime::{
    summarize_dependences, LoopSummary, RedOp, RedVars, RunError, RunStats, SeqSpace, TxCtx,
};
use alter_sim::{CostModel, SimClock, SimObserver};

// Body object layout: [0]=x [1]=y [2]=vx [3]=vy [4]=mass.
const BX: usize = 0;
const BY: usize = 1;
const VX: usize = 2;
const VY: usize = 3;
const BM: usize = 4;

/// A quadtree node: either an aggregate (centre of mass) or a leaf body.
#[derive(Clone, Debug)]
struct QuadNode {
    x: f64,
    y: f64,
    mass: f64,
    size: f64,
    children: Vec<QuadNode>,
}

impl QuadNode {
    fn build(bodies: &[(f64, f64, f64)], x0: f64, y0: f64, size: f64, depth: usize) -> QuadNode {
        let mass: f64 = bodies.iter().map(|b| b.2).sum();
        let (cx, cy) = if mass > 0.0 {
            (
                bodies.iter().map(|b| b.0 * b.2).sum::<f64>() / mass,
                bodies.iter().map(|b| b.1 * b.2).sum::<f64>() / mass,
            )
        } else {
            (x0 + size / 2.0, y0 + size / 2.0)
        };
        let mut node = QuadNode {
            x: cx,
            y: cy,
            mass,
            size,
            children: Vec::new(),
        };
        if bodies.len() > 1 && depth < 16 {
            let half = size / 2.0;
            for qy in 0..2 {
                for qx in 0..2 {
                    let (qx0, qy0) = (x0 + qx as f64 * half, y0 + qy as f64 * half);
                    let sub: Vec<(f64, f64, f64)> = bodies
                        .iter()
                        .copied()
                        .filter(|b| {
                            b.0 >= qx0 && b.0 < qx0 + half && b.1 >= qy0 && b.1 < qy0 + half
                        })
                        .collect();
                    if !sub.is_empty() {
                        node.children
                            .push(QuadNode::build(&sub, qx0, qy0, half, depth + 1));
                    }
                }
            }
        }
        node
    }

    /// Barnes-Hut force with opening angle θ = 0.5; returns (fx, fy, nodes
    /// visited).
    fn force(&self, x: f64, y: f64, theta: f64) -> (f64, f64, u64) {
        let dx = self.x - x;
        let dy = self.y - y;
        let d2 = dx * dx + dy * dy + 1e-6;
        if self.children.is_empty() || self.size * self.size < theta * theta * d2 {
            let d = d2.sqrt();
            let f = self.mass / (d2 * d);
            (f * dx, f * dy, 1)
        } else {
            let mut acc = (0.0, 0.0, 1u64);
            for c in &self.children {
                let (fx, fy, n) = c.force(x, y, theta);
                acc.0 += fx;
                acc.1 += fy;
                acc.2 += n;
            }
            acc
        }
    }
}

/// The Barnes-Hut N-body benchmark.
#[derive(Clone, Debug)]
pub struct BarnesHut {
    name: &'static str,
    bodies: usize,
    steps: usize,
    dt: f64,
    seed: u64,
}

impl BarnesHut {
    /// The benchmark at the given scale (the paper simulates 4096/8192
    /// particles).
    pub fn new(scale: Scale) -> Self {
        BarnesHut {
            name: "BarnesHut",
            bodies: match scale {
                Scale::Inference => 256,
                Scale::Paper => 1024,
            },
            steps: 4,
            dt: 1e-3,
            seed: 0xb125,
        }
    }

    fn initial_bodies(&self) -> Vec<[f64; 5]> {
        let mut r = rng(self.seed);
        let xs = uniform_f64s(&mut r, self.bodies, 0.0, 1.0);
        let ys = uniform_f64s(&mut r, self.bodies, 0.0, 1.0);
        let ms = uniform_f64s(&mut r, self.bodies, 0.5, 1.5);
        (0..self.bodies)
            .map(|i| [xs[i], ys[i], 0.0, 0.0, ms[i]])
            .collect()
    }

    /// Sequential reference: returns final positions.
    pub fn run_sequential_raw(&self) -> Vec<f64> {
        let mut bodies = self.initial_bodies();
        for _ in 0..self.steps {
            let snapshot: Vec<(f64, f64, f64)> =
                bodies.iter().map(|b| (b[BX], b[BY], b[BM])).collect();
            let tree = QuadNode::build(&snapshot, -2.0, -2.0, 5.0, 0);
            for b in &mut bodies {
                let (fx, fy, _) = tree.force(b[BX], b[BY], 0.5);
                b[VX] += fx * self.dt;
                b[VY] += fy * self.dt;
                b[BX] += b[VX] * self.dt;
                b[BY] += b[VY] * self.dt;
            }
        }
        bodies.iter().flat_map(|b| [b[BX], b[BY]]).collect()
    }

    /// Runs the full program under `probe`.
    ///
    /// # Errors
    ///
    /// Propagates runtime aborts.
    #[allow(clippy::type_complexity)]
    pub fn run(&self, probe: &Probe) -> Result<(Vec<f64>, RunStats, SimClock), RunError> {
        let mut heap = Heap::new();
        let mut reds = RedVars::new();
        let list: AlterList<ObjId> = AlterList::new(&mut heap);
        for b in self.initial_bodies() {
            let obj = heap.alloc(ObjData::F64(b.to_vec()));
            list.push_back(&mut heap, obj);
        }
        let params = probe.exec_params(&reds);
        let model = self.cost_model();
        let mut obs = SimObserver::new(&model, params.workers);
        let mut stats = RunStats::default();
        let dt = self.dt;

        for _ in 0..self.steps {
            // Sequential tree build from the committed state (the paper
            // parallelizes only the force loop).
            let objs: Vec<ObjId> = list.seq_values(&heap);
            let snapshot: Vec<(f64, f64, f64)> = objs
                .iter()
                .map(|o| {
                    let b = heap.get(*o).f64s();
                    (b[BX], b[BY], b[BM])
                })
                .collect();
            let tree = QuadNode::build(&snapshot, -2.0, -2.0, 5.0, 0);
            let nodes = list.node_ids(&heap);
            let body = |ctx: &mut TxCtx<'_>, raw: u64| {
                let node = ObjId::from_index(raw as u32);
                let obj = list.value(ctx, node);
                let (x, y) = (ctx.tx.read_f64(obj, BX), ctx.tx.read_f64(obj, BY));
                let (fx, fy, visited) = tree.force(x, y, 0.5);
                ctx.tx.work(visited * 8);
                ctx.tx.update_f64s(obj, 0, 4, |b| {
                    b[VX] += fx * dt;
                    b[VY] += fy * dt;
                    b[BX] += b[VX] * dt;
                    b[BY] += b[VY] * dt;
                });
            };
            let step_stats = alter_runtime::run_loop_observed(
                &mut heap,
                &mut reds,
                &mut SeqSpace::new(nodes),
                &params,
                probe.driver(),
                body,
                &mut obs,
            )?;
            stats.absorb(&step_stats);
        }
        let positions: Vec<f64> = list
            .seq_values(&heap)
            .iter()
            .flat_map(|o| {
                let b = heap.get(*o).f64s();
                [b[BX], b[BY]]
            })
            .collect();
        let mut clock = obs.into_clock();
        // Tree builds are the sequential 0.4% of runtime (loop weight 99.6%).
        clock.add_sequential(self.steps as f64 * self.bodies as f64 * 4.0);
        Ok((positions, stats, clock))
    }
}

impl InferTarget for BarnesHut {
    fn name(&self) -> &str {
        self.name
    }

    fn run_sequential(&self) -> ProgramOutput {
        ProgramOutput::from_floats(self.run_sequential_raw())
    }

    fn run_probe(&self, probe: &Probe) -> Result<ProbeRun, RunError> {
        let (positions, stats, clock) = self.run(probe)?;
        Ok(ProbeRun {
            output: ProgramOutput::from_floats(positions),
            stats,
            clock,
        })
    }

    fn probe_summary(&self) -> LoopSummary {
        let mut heap = Heap::new();
        let list: AlterList<ObjId> = AlterList::new(&mut heap);
        for b in self.initial_bodies().into_iter().take(64) {
            let obj = heap.alloc(ObjData::F64(b.to_vec()));
            list.push_back(&mut heap, obj);
        }
        let snapshot: Vec<(f64, f64, f64)> = list
            .seq_values(&heap)
            .iter()
            .map(|o| {
                let b = heap.get(*o).f64s();
                (b[BX], b[BY], b[BM])
            })
            .collect();
        let tree = QuadNode::build(&snapshot, -2.0, -2.0, 5.0, 0);
        let nodes = list.node_ids(&heap);
        let dt = self.dt;
        let body = move |ctx: &mut TxCtx<'_>, raw: u64| {
            let node = ObjId::from_index(raw as u32);
            let obj = list.value(ctx, node);
            let (x, y) = (ctx.tx.read_f64(obj, BX), ctx.tx.read_f64(obj, BY));
            let (fx, fy, _) = tree.force(x, y, 0.5);
            ctx.tx.update_f64s(obj, 0, 4, |b| {
                b[VX] += fx * dt;
                b[VY] += fy * dt;
                b[BX] += b[VX] * dt;
                b[BY] += b[VY] * dt;
            });
        };
        summarize_dependences(&mut heap, &mut SeqSpace::new(nodes), body)
    }

    fn loop_spec(&self) -> Option<LoopSpec> {
        // Mirror `probe_summary`'s heap construction so ObjIds line up.
        let mut heap = Heap::new();
        let list: AlterList<ObjId> = AlterList::new(&mut heap);
        let mut bodies = Vec::new();
        for b in self.initial_bodies().into_iter().take(64) {
            let obj = heap.alloc(ObjData::F64(b.to_vec()));
            list.push_back(&mut heap, obj);
            bodies.push(obj);
        }
        let nodes: Vec<ObjId> = list
            .node_ids(&heap)
            .into_iter()
            .map(|raw| ObjId::from_index(raw as u32))
            .collect();
        let mut spec = LoopSpec::new(nodes.len() as u64, heap.high_water());
        // Iteration i reads its own list node's value word and updates its
        // own body's [x, y, vx, vy] — both ordinal-injective, no carried
        // dependences (Table 3: Dep = No).
        let node_r = spec.region("nodes", nodes, 3);
        spec.access(
            node_r,
            Member::Each,
            Words::Range { lo: 0, hi: 1 },
            AccessKind::Read,
        );
        let body_r = spec.region("bodies", bodies, 5);
        spec.access(
            body_r,
            Member::Each,
            Words::Range { lo: 0, hi: 4 },
            AccessKind::Update,
        );
        Some(spec)
    }

    fn validate(&self, reference: &ProgramOutput, candidate: &ProgramOutput) -> bool {
        reference.approx_eq(candidate, 1e-9)
    }
}

impl Benchmark for BarnesHut {
    fn loop_weight(&self) -> f64 {
        0.996 // Table 2
    }

    fn chunk_factor(&self) -> usize {
        16
    }

    fn best_config(&self) -> (Model, Option<(String, RedOp)>) {
        (Model::StaleReads, None)
    }

    fn cost_model(&self) -> CostModel {
        CostModel::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alter_infer::{infer, InferConfig};

    fn tiny() -> BarnesHut {
        BarnesHut {
            name: "BarnesHut",
            bodies: 64,
            steps: 2,
            dt: 1e-3,
            seed: 10,
        }
    }

    #[test]
    fn sequential_is_finite_and_moves_bodies() {
        let bh = tiny();
        let pos = bh.run_sequential_raw();
        assert_eq!(pos.len(), 128);
        assert!(pos.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn no_loop_carried_dependences() {
        let bh = tiny();
        assert!(!bh.probe_dependences().any());
    }

    #[test]
    fn parallel_force_loop_is_exact() {
        let bh = tiny();
        let seq = bh.run_sequential();
        for model in [Model::Tls, Model::OutOfOrder, Model::StaleReads] {
            let run = bh.run_probe(&Probe::new(model, 4, 8)).unwrap();
            assert!(bh.validate(&seq, &run.output), "{model}");
            assert_eq!(run.stats.retries(), 0, "{model}");
        }
    }

    #[test]
    fn inference_reports_all_success() {
        let bh = tiny();
        let report = infer(
            &bh,
            &InferConfig {
                workers: 4,
                chunk: 8,
                ..Default::default()
            },
        );
        assert!(!report.dep.any());
        assert!(report.tls.is_success());
        assert!(report.out_of_order.is_success());
        assert!(report.stale_reads.is_success());
    }
}
