//! Shared infrastructure for the twelve evaluation workloads.

use alter_infer::{InferTarget, Model, Probe};
use alter_runtime::RedOp;
use alter_sim::CostModel;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Input scale: small inputs for annotation inference and tests, larger
/// inputs for the speedup figures — mirroring Table 2's two input columns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Inference/test inputs.
    Inference,
    /// Benchmarking inputs (the bold column of Table 2).
    Paper,
}

/// A benchmark from the paper's evaluation (Table 2): an inference target
/// plus the metadata the figure/table harness needs.
pub trait Benchmark: InferTarget + Sync {
    /// Fraction of program runtime spent in the target loop (Table 2's
    /// LOOP WGT). Dilutes simulated speedups Amdahl-style.
    fn loop_weight(&self) -> f64 {
        1.0
    }

    /// The tuned chunk factor used for performance runs (Table 4's cf).
    fn chunk_factor(&self) -> usize;

    /// The model + reduction the paper selects for this benchmark's
    /// speedup figures.
    fn best_config(&self) -> (Model, Option<(String, RedOp)>);

    /// The cost model for this benchmark's simulated-multicore runs
    /// (memory-bound kernels carry a bandwidth ceiling).
    fn cost_model(&self) -> CostModel {
        CostModel::default()
    }

    /// Builds the probe the speedup figures run: the best configuration at
    /// this benchmark's tuned chunk factor.
    fn best_probe(&self, workers: usize) -> Probe {
        let (model, reduction) = self.best_config();
        let mut p = Probe::new(model, workers, self.chunk_factor());
        p.reduction = reduction;
        p
    }
}

/// A deterministic RNG for workload input generation. Every workload
/// derives its inputs from a fixed seed so that each probe sees identical
/// state — the precondition for "one run per test" inference.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// `n` uniform floats in `[lo, hi)`.
pub fn uniform_f64s(rng: &mut SmallRng, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// `n` uniform integers in `[0, bound)`.
pub fn uniform_usizes(rng: &mut SmallRng, n: usize, bound: usize) -> Vec<usize> {
    (0..n).map(|_| rng.gen_range(0..bound)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let a = uniform_f64s(&mut rng(7), 5, 0.0, 1.0);
        let b = uniform_f64s(&mut rng(7), 5, 0.0, 1.0);
        assert_eq!(a, b);
        let c = uniform_f64s(&mut rng(8), 5, 0.0, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn generators_respect_bounds() {
        let xs = uniform_f64s(&mut rng(1), 100, -2.0, 3.0);
        assert!(xs.iter().all(|x| (-2.0..3.0).contains(x)));
        let is = uniform_usizes(&mut rng(2), 100, 7);
        assert!(is.iter().all(|i| *i < 7));
    }
}
