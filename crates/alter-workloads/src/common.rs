//! Shared infrastructure for the twelve evaluation workloads.

use alter_infer::{InferTarget, Model, Probe};
use alter_runtime::RedOp;
use alter_sim::CostModel;

/// Input scale: small inputs for annotation inference and tests, larger
/// inputs for the speedup figures — mirroring Table 2's two input columns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Inference/test inputs.
    Inference,
    /// Benchmarking inputs (the bold column of Table 2).
    Paper,
}

/// A benchmark from the paper's evaluation (Table 2): an inference target
/// plus the metadata the figure/table harness needs.
pub trait Benchmark: InferTarget + Sync {
    /// Fraction of program runtime spent in the target loop (Table 2's
    /// LOOP WGT). Dilutes simulated speedups Amdahl-style.
    fn loop_weight(&self) -> f64 {
        1.0
    }

    /// The tuned chunk factor used for performance runs (Table 4's cf).
    fn chunk_factor(&self) -> usize;

    /// The model + reduction the paper selects for this benchmark's
    /// speedup figures.
    fn best_config(&self) -> (Model, Option<(String, RedOp)>);

    /// The cost model for this benchmark's simulated-multicore runs
    /// (memory-bound kernels carry a bandwidth ceiling).
    fn cost_model(&self) -> CostModel {
        CostModel::default()
    }

    /// Builds the probe the speedup figures run: the best configuration at
    /// this benchmark's tuned chunk factor.
    fn best_probe(&self, workers: usize) -> Probe {
        let (model, reduction) = self.best_config();
        let mut p = Probe::new(model, workers, self.chunk_factor());
        p.reduction = reduction;
        p
    }
}

/// A SplitMix64 pseudo-random generator — the in-repo replacement for the
/// `rand` crate (the workspace builds fully offline). Determinism is a
/// *feature*: every workload derives its inputs from a fixed seed so that
/// each probe sees identical state — the precondition for "one run per
/// test" inference — and a seedless, dependency-free generator keeps the
/// input stream identical across toolchains and platforms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniform bits (Steele, Lea, Flood: "Fast splittable
    /// pseudorandom number generators", OOPSLA 2014).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)` from the top 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from `range` (mirrors `rand::Rng::gen_range` for
    /// the range shapes the workloads use). Integer sampling uses a simple
    /// modulo — the negligible bias is irrelevant here, reproducibility is
    /// what matters.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// A range shape [`SplitMix64::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut SplitMix64) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut SplitMix64) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange for std::ops::Range<usize> {
    type Output = usize;
    #[inline]
    fn sample(self, rng: &mut SplitMix64) -> usize {
        assert!(self.start < self.end, "empty usize range");
        self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
    }
}

impl SampleRange for std::ops::Range<i64> {
    type Output = i64;
    #[inline]
    fn sample(self, rng: &mut SplitMix64) -> i64 {
        assert!(self.start < self.end, "empty i64 range");
        self.start + (rng.next_u64() % (self.end - self.start) as u64) as i64
    }
}

impl SampleRange for std::ops::RangeInclusive<usize> {
    type Output = usize;
    #[inline]
    fn sample(self, rng: &mut SplitMix64) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty inclusive range");
        let span = (hi - lo) as u64 + 1;
        lo + (rng.next_u64() % span) as usize
    }
}

/// A deterministic RNG for workload input generation, seeded per workload.
pub fn rng(seed: u64) -> SplitMix64 {
    SplitMix64::seed_from_u64(seed)
}

/// `n` uniform floats in `[lo, hi)`.
pub fn uniform_f64s(rng: &mut SplitMix64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// `n` uniform integers in `[0, bound)`.
pub fn uniform_usizes(rng: &mut SplitMix64, n: usize, bound: usize) -> Vec<usize> {
    (0..n).map(|_| rng.gen_range(0..bound)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let a = uniform_f64s(&mut rng(7), 5, 0.0, 1.0);
        let b = uniform_f64s(&mut rng(7), 5, 0.0, 1.0);
        assert_eq!(a, b);
        let c = uniform_f64s(&mut rng(8), 5, 0.0, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn generators_respect_bounds() {
        let xs = uniform_f64s(&mut rng(1), 100, -2.0, 3.0);
        assert!(xs.iter().all(|x| (-2.0..3.0).contains(x)));
        let is = uniform_usizes(&mut rng(2), 100, 7);
        assert!(is.iter().all(|i| *i < 7));
    }
}
