//! Manual-parallelization baselines (paper §7.3, Figures 8 and 9).
//!
//! The paper hand-parallelizes two benchmarks to calibrate ALTER's
//! overhead:
//!
//! * **Gauss-Seidel** — a multi-threaded version that "mimics the runtime
//!   behavior of StaleReads by maintaining multiple copies of XVector that
//!   are synchronized in exactly the same way as a chunked execution under
//!   ALTER". We model it by replaying the identical chunked execution with
//!   the instrumentation, copy-on-write and commit costs stripped (the
//!   synchronization structure — barriers, bandwidth — remains). The paper
//!   finds ALTER *comparable* to this baseline.
//! * **K-means** — "threads and fine-grained locking": no snapshots or
//!   commits at all, just a lock acquisition per shared update. The paper
//!   finds ALTER 20–47% slower, "due to the overhead of the ALTER runtime
//!   system as it explores parallelism via optimistic, coarse-grained
//!   execution rather than pessimistic fine-grained locking".

use crate::gauss_seidel::GaussSeidel;
use crate::kmeans::KMeans;
use crate::Benchmark;
use alter_infer::Probe;
use alter_runtime::RunError;
use alter_sim::{CostModel, SimClock};

/// Cost model of a hand-written threaded version that keeps ALTER's
/// synchronization structure but drops its instrumentation: no tracked
/// sets, no copy-on-write, no commit-time merging; a light barrier per
/// round (plain `pthread`-style) and the same memory system.
pub fn hand_synced_model(base: &CostModel) -> CostModel {
    CostModel {
        per_instr_op: 0.0,
        per_cow_word: 0.0,
        per_commit_word: 0.02, // copies into the shared vector remain
        per_validate_word: 0.0,
        barrier: base.barrier / 4.0,
        per_snapshot_slot: 0.0,
        ..base.clone()
    }
}

/// Cost model of a fine-grained-locking version: per-update lock traffic
/// instead of instrumentation, and no lock-step structure beyond one join
/// per outer iteration.
pub fn fine_grained_lock_model(base: &CostModel) -> CostModel {
    CostModel {
        per_instr_op: 0.6, // one atomic acquire/release per shared update
        per_cow_word: 0.0,
        per_commit_word: 0.0,
        per_validate_word: 0.0,
        barrier: base.barrier / 4.0,
        per_snapshot_slot: 0.0,
        ..base.clone()
    }
}

/// Runs the manual Gauss-Seidel baseline at `workers` threads.
///
/// # Errors
///
/// Propagates runtime aborts (none occur for valid configurations).
pub fn manual_gauss_seidel(gs: &GaussSeidel, workers: usize) -> Result<SimClock, RunError> {
    let probe: Probe = gs.best_probe(workers);
    let model = hand_synced_model(&gs.cost_model());
    gs.run_with_model(&probe, &model)
        .map(|(_, _, _, clock)| clock)
}

/// Runs the manual fine-grained-locking K-means baseline at `workers`
/// threads.
///
/// # Errors
///
/// Propagates runtime aborts (none occur for valid configurations).
pub fn manual_kmeans(km: &KMeans, workers: usize) -> Result<SimClock, RunError> {
    let probe: Probe = km.best_probe(workers);
    let model = fine_grained_lock_model(&km.cost_model());
    km.run_with_model(&probe, &model)
        .map(|(_, _, _, clock)| clock)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn manual_kmeans_beats_alter_by_tens_of_percent() {
        let km = KMeans::new(Scale::Inference);
        let workers = 4;
        let alter = km.run(&km.best_probe(workers)).unwrap().3;
        let manual = manual_kmeans(&km, workers).unwrap();
        let ratio = alter.par_units / manual.par_units;
        // The paper measures 20-47%; our software-COW isolation is cheaper
        // than Win32 process machinery, so the gap lands lower but must
        // stay clearly visible.
        assert!(
            ratio > 1.03 && ratio < 2.0,
            "ALTER must be measurably slower than fine-grained locking; ratio {ratio:.2}"
        );
    }

    #[test]
    fn manual_gauss_seidel_is_comparable_to_alter() {
        let gs = GaussSeidel::sparse(Scale::Inference);
        let workers = 4;
        let alter = gs.run(&gs.best_probe(workers)).unwrap().3;
        let manual = manual_gauss_seidel(&gs, workers).unwrap();
        let ratio = alter.par_units / manual.par_units;
        assert!(
            ratio > 0.9 && ratio < 1.6,
            "ALTER performs comparably to the hand-synced version; ratio {ratio:.2}"
        );
    }
}
