//! Labyrinth — STAMP's maze router, the one benchmark ALTER cannot
//! parallelize (Table 3: high conflicts under every model).
//!
//! Each iteration routes one (source, destination) request through a shared
//! grid with a breadth-first search and claims every cell along the found
//! path. The BFS reads a large portion of the grid and the claimed paths
//! overlap heavily, so concurrent iterations conflict almost always — under
//! WAW *and* RAW policies — and the loop effectively serializes. The grid
//! is an `ALTERVector` as in the paper (Table 2).

use crate::common::{rng, Benchmark, Scale};
use alter_analyze::absint::{AccessKind, LoopSpec, Member, Words};
use alter_collections::AlterVec;
use alter_heap::Heap;
use alter_infer::{InferTarget, Model, Probe, ProbeRun, ProgramOutput};
use alter_runtime::{
    summarize_dependences, LoopSummary, RangeSpace, RedOp, RedVars, RunError, RunStats, TxCtx,
};
use alter_sim::{CostModel, SimClock, SimObserver};
use std::collections::VecDeque;

const FREE: i64 = 0;

/// The Labyrinth routing benchmark.
#[derive(Clone, Debug)]
pub struct Labyrinth {
    name: &'static str,
    width: usize,
    height: usize,
    /// Routing layers (the paper's grids are 128²×3 and 256²×5).
    depth: usize,
    paths: usize,
    seed: u64,
}

impl Labyrinth {
    /// The benchmark at the given scale (the paper routes 128–256 paths on
    /// 128²×3 to 256²×5 grids).
    pub fn new(scale: Scale) -> Self {
        // Enough requests that even at the inference chunk factor (16)
        // several transactions run concurrently, each routing through the
        // contended grid centre.
        let (side, paths) = match scale {
            Scale::Inference => (20, 128),
            Scale::Paper => (32, 256),
        };
        Labyrinth {
            name: "Labyrinth",
            width: side,
            height: side,
            depth: 3,
            paths,
            seed: 0x1ab1,
        }
    }

    /// Deterministic routing requests: each connects two opposite borders,
    /// so every route crosses the middle of the grid and routes contend
    /// heavily — the congestion regime the paper's Labyrinth runs in.
    pub fn requests(&self) -> Vec<(usize, usize)> {
        let mut r = rng(self.seed);
        let (w, h) = (self.width, self.height);
        (0..self.paths)
            .map(|i| {
                if i % 2 == 0 {
                    // Left border to right border.
                    let s = r.gen_range(0..h) * w;
                    let d = r.gen_range(0..h) * w + (w - 1);
                    (s, d)
                } else {
                    // Top border to bottom border.
                    let s = r.gen_range(0..w);
                    let d = (h - 1) * w + r.gen_range(0..w);
                    (s, d)
                }
            })
            .collect()
    }

    /// BFS from `src` to `dst` over `occupied`; returns the path cells
    /// (excluding endpoints' freedom requirements — endpoints may be
    /// shared) or `None` if unreachable.
    fn bfs(&self, occupied: &[i64], src: usize, dst: usize) -> Option<Vec<usize>> {
        let (w, h, d) = (self.width, self.height, self.depth);
        let mut prev = vec![usize::MAX; w * h * d];
        let mut queue = VecDeque::new();
        prev[src] = src;
        queue.push_back(src);
        while let Some(c) = queue.pop_front() {
            if c == dst {
                let mut path = Vec::new();
                let mut cur = dst;
                while cur != src {
                    path.push(cur);
                    cur = prev[cur];
                }
                path.push(src);
                path.reverse();
                return Some(path);
            }
            let (x, y, z) = (c % w, (c / w) % h, c / (w * h));
            let mut push = |n: usize| {
                if prev[n] == usize::MAX && (occupied[n] == FREE || n == dst) {
                    prev[n] = c;
                    queue.push_back(n);
                }
            };
            if x > 0 {
                push(c - 1);
            }
            if x + 1 < w {
                push(c + 1);
            }
            if y > 0 {
                push(c - w);
            }
            if y + 1 < h {
                push(c + w);
            }
            if z > 0 {
                push(c - w * h);
            }
            if z + 1 < d {
                push(c + w * h);
            }
        }
        None
    }

    /// Sequential router; returns the final grid and routed-path count.
    pub fn run_sequential_raw(&self) -> (Vec<i64>, usize) {
        let mut grid = vec![FREE; self.width * self.height * self.depth];
        let mut routed = 0;
        for (id, (s, d)) in self.requests().into_iter().enumerate() {
            if let Some(path) = self.bfs(&grid, s, d) {
                for c in path {
                    grid[c] = id as i64 + 1;
                }
                routed += 1;
            }
        }
        (grid, routed)
    }

    fn body<'a>(
        &'a self,
        requests: &'a [(usize, usize)],
        grid: AlterVec<i64>,
    ) -> impl Fn(&mut TxCtx<'_>, u64) + Sync + 'a {
        move |ctx, i| {
            let (s, d) = requests[i as usize];
            // The BFS reads the whole grid state.
            let occupied = grid.to_vec(ctx);
            ctx.tx.work((occupied.len() * 4) as u64);
            if let Some(path) = self.bfs(&occupied, s, d) {
                for c in path {
                    grid.set(ctx, c, i as i64 + 1);
                }
            }
        }
    }

    /// Runs the router under `probe`.
    ///
    /// # Errors
    ///
    /// Propagates runtime aborts.
    #[allow(clippy::type_complexity)]
    pub fn run(&self, probe: &Probe) -> Result<(Vec<i64>, usize, RunStats, SimClock), RunError> {
        let requests = self.requests();
        let mut heap = Heap::new();
        let mut reds = RedVars::new();
        let grid: AlterVec<i64> = AlterVec::new(&mut heap, self.width * self.height * self.depth);
        let params = probe.exec_params(&reds);
        let model = self.cost_model();
        let mut obs = SimObserver::new(&model, params.workers);
        let body = self.body(&requests, grid);
        let stats = alter_runtime::run_loop_observed(
            &mut heap,
            &mut reds,
            &mut RangeSpace::new(0, requests.len() as u64),
            &params,
            probe.driver(),
            body,
            &mut obs,
        )?;
        let cells = grid.seq_to_vec(&heap);
        let routed = {
            let mut ids: Vec<i64> = cells.iter().copied().filter(|&v| v != FREE).collect();
            ids.sort_unstable();
            ids.dedup();
            ids.len()
        };
        Ok((cells, routed, stats, obs.into_clock()))
    }
}

impl InferTarget for Labyrinth {
    fn name(&self) -> &str {
        self.name
    }

    fn run_sequential(&self) -> ProgramOutput {
        let (grid, routed) = self.run_sequential_raw();
        let mut ints = vec![routed as i64];
        ints.extend(grid);
        ProgramOutput::from_ints(ints)
    }

    fn run_probe(&self, probe: &Probe) -> Result<ProbeRun, RunError> {
        let (grid, routed, stats, clock) = self.run(probe)?;
        let mut ints = vec![routed as i64];
        ints.extend(grid);
        Ok(ProbeRun {
            output: ProgramOutput::from_ints(ints),
            stats,
            clock,
        })
    }

    fn probe_summary(&self) -> LoopSummary {
        let requests = self.requests();
        let mut heap = Heap::new();
        let grid: AlterVec<i64> = AlterVec::new(&mut heap, self.width * self.height * self.depth);
        let body = self.body(&requests, grid);
        summarize_dependences(
            &mut heap,
            &mut RangeSpace::new(0, requests.len() as u64),
            body,
        )
    }

    fn loop_spec(&self) -> Option<LoopSpec> {
        // Mirror `probe_summary`'s heap construction so ObjIds line up.
        let len = (self.width * self.height * self.depth) as u32;
        let mut heap = Heap::new();
        let grid: AlterVec<i64> = AlterVec::new(&mut heap, self.width * self.height * self.depth);
        let mut spec = LoopSpec::new(self.paths as u64, heap.high_water());
        // Every route BFSes over a snapshot of the whole grid, then claims
        // the (data-dependent) cells of the path it found — the
        // all-overlapping shape no model can break.
        let grid_r = spec.region("grid", vec![grid.object()], len);
        spec.access(
            grid_r,
            Member::At(0),
            Words::Range { lo: 0, hi: len },
            AccessKind::Read,
        );
        spec.access_if(
            grid_r,
            Member::At(0),
            Words::Unknown { bound: len },
            AccessKind::Write,
        );
        Some(spec)
    }

    fn validate(&self, reference: &ProgramOutput, candidate: &ProgramOutput) -> bool {
        // The assertion the paper relies on: the same number of requests
        // must route, and no two paths may claim conflicting cells (grid
        // occupancy digests must agree).
        reference.ints == candidate.ints
    }
}

impl Benchmark for Labyrinth {
    fn loop_weight(&self) -> f64 {
        0.99 // Table 2
    }

    fn chunk_factor(&self) -> usize {
        1
    }

    fn best_config(&self) -> (Model, Option<(String, RedOp)>) {
        // No annotation validates; figures show the (failing) StaleReads run.
        (Model::StaleReads, None)
    }

    fn cost_model(&self) -> CostModel {
        CostModel::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alter_infer::{infer, InferConfig, Outcome};

    fn tiny() -> Labyrinth {
        Labyrinth {
            name: "Labyrinth",
            width: 12,
            height: 12,
            depth: 3,
            paths: 16,
            seed: 8,
        }
    }

    #[test]
    fn sequential_routes_most_requests() {
        let l = tiny();
        let (grid, routed) = l.run_sequential_raw();
        assert!(routed >= 12, "routed only {routed}");
        assert!(grid.iter().any(|&c| c != FREE));
    }

    #[test]
    fn every_model_fails() {
        let l = tiny();
        let report = infer(
            &l,
            &InferConfig {
                workers: 4,
                chunk: 1,
                ..Default::default()
            },
        );
        assert!(report.dep.any());
        for (name, outcome) in [
            ("tls", &report.tls),
            ("ooo", &report.out_of_order),
            ("stale", &report.stale_reads),
        ] {
            assert!(!outcome.is_success(), "{name} unexpectedly succeeded");
            assert!(
                matches!(
                    outcome,
                    Outcome::HighConflicts | Outcome::Timeout | Outcome::OutputMismatch
                ),
                "{name}: {outcome}"
            );
        }
        assert!(report.valid_annotations.is_empty());
    }

    #[test]
    fn stale_reads_has_high_conflicts() {
        let l = tiny();
        let (_, _, stats, _) = l.run(&Probe::new(Model::StaleReads, 4, 1)).unwrap();
        assert!(
            stats.retry_rate() >= 0.4,
            "overlapping paths must conflict heavily: {:.2}",
            stats.retry_rate()
        );
    }
}
