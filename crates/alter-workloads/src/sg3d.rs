//! SG3D — the 27-point 3D stencil of the structured-grids dwarf.
//!
//! "A triply-nested inner loop iterates over points in 3D space, updating
//! their value and tracking the maximum change (error) that occurs at any
//! point. An outer loop tests for convergence … While the stencil
//! computations can tolerate stale reads, the update of the error value
//! must not violate any dependences, or the execution could terminate
//! incorrectly." (Table 2)
//!
//! The error variable therefore needs a reduction: `StaleReads` alone
//! leaves a shared read-modify-write scalar that conflicts on every
//! transaction (`h.c.`), while `[StaleReads + Reduction(err, max)]` runs
//! conflict-free. Annotating `+` instead of `max` also validates — the
//! summed error overestimates the true maximum, so the program converges
//! correctly but needs more sweeps (the paper measures 1670→2752 inner
//! iterations; Figure 11 shows the slowdown).

use crate::common::{rng, uniform_f64s, Benchmark, Scale};
use alter_analyze::absint::{AccessKind, LoopSpec, Member, Words};
use alter_heap::{Heap, ObjData, ObjId};
use alter_infer::{InferTarget, Model, Probe, ProbeRun, ProgramOutput};
use alter_runtime::{
    summarize_dependences, BoundScalar, LoopSummary, RangeSpace, RedOp, RedVal, RedVars, RunError,
    RunStats, TxCtx,
};
use alter_sim::{CostModel, SimClock, SimObserver};

/// The SG3D stencil benchmark.
#[derive(Clone, Debug)]
pub struct Sg3d {
    name: &'static str,
    /// Grid edge length (cells per dimension, including boundary).
    n: usize,
    threshold: f64,
    max_sweeps: usize,
    seed: u64,
}

impl Sg3d {
    /// The benchmark at the given scale (the paper uses 64³/128³ grids;
    /// ours are scaled to the simulated substrate).
    pub fn new(scale: Scale) -> Self {
        Sg3d {
            name: "SG3D",
            n: match scale {
                Scale::Inference => 10,
                Scale::Paper => 16,
            },
            threshold: 1e-7,
            // A realistic iteration cap: a few multiples of the expected
            // sweep count. Degenerate reduction annotations (e.g. ×, whose
            // merged error only reaches the threshold at the exact
            // floating-point fixpoint) run into the cap and are rejected
            // by the validator.
            max_sweeps: 150,
            seed: 0x5637,
        }
    }

    fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.n + y) * self.n + x
    }

    /// Interior cell indices, deterministically shuffled. Stencil sweeps
    /// are order-free; the shuffled order spreads each chunk across the
    /// grid, which both balances work and makes the per-transaction error
    /// maxima representative of the global error (the regime in which the
    /// + reduction's overestimate visibly delays convergence, Figure 11).
    fn interior(&self) -> Vec<usize> {
        let mut v = Vec::new();
        for z in 1..self.n - 1 {
            for y in 1..self.n - 1 {
                for x in 1..self.n - 1 {
                    v.push(self.idx(x, y, z));
                }
            }
        }
        // Fisher-Yates with a fixed seed.
        let mut r = rng(self.seed ^ 0x5851);
        for i in (1..v.len()).rev() {
            let j = r.gen_range(0..=i);
            v.swap(i, j);
        }
        v
    }

    /// Source term (fixed, deterministic).
    fn source(&self) -> Vec<f64> {
        uniform_f64s(&mut rng(self.seed), self.n * self.n * self.n, -1.0, 1.0)
    }

    fn relax(cell: f64, avg: f64, f: f64) -> f64 {
        // Damped 27-point diffusion toward the source term: a contraction
        // (factor 0.75 per sweep), so both the sequential (Gauss-Seidel-
        // ordered) and the stale (Jacobi-flavoured) sweeps converge to the
        // same fixed point. The moderate rate means a pessimistic error
        // estimate (the + reduction) costs visibly many extra sweeps.
        let _ = cell;
        0.75 * avg + 0.25 * f
    }

    /// Sequential reference; returns the grid and sweep count.
    pub fn run_sequential_raw(&self) -> (Vec<f64>, usize) {
        let f = self.source();
        let mut grid = vec![0.0; self.n * self.n * self.n];
        let cells = self.interior();
        let mut sweeps = 0;
        loop {
            let mut err = 0.0f64;
            for &c in &cells {
                let (x, y, z) = self.coords(c);
                let mut sum = 0.0;
                for dz in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            let i = self.idx(
                                (x as i64 + dx) as usize,
                                (y as i64 + dy) as usize,
                                (z as i64 + dz) as usize,
                            );
                            sum += grid[i];
                        }
                    }
                }
                let new = Self::relax(grid[c], sum / 27.0, f[c]);
                err = err.max((new - grid[c]).abs());
                grid[c] = new;
            }
            sweeps += 1;
            if err < self.threshold || sweeps >= self.max_sweeps {
                break;
            }
        }
        (grid, sweeps)
    }

    fn coords(&self, c: usize) -> (usize, usize, usize) {
        (c % self.n, (c / self.n) % self.n, c / (self.n * self.n))
    }

    fn body<'a>(
        &self,
        f: &'a [f64],
        cells: &'a [usize],
        grid: ObjId,
        err: BoundScalar,
    ) -> impl Fn(&mut TxCtx<'_>, u64) + Sync + 'a {
        let n = self.n;
        move |ctx, iter| {
            let c = cells[iter as usize];
            let x = c % n;
            let y = (c / n) % n;
            let z = c / (n * n);
            // Nine 3-wide range reads: one row of three per (dy, dz) pair —
            // the induction-variable-range instrumentation at work.
            let mut sum = 0.0;
            for dz in -1i64..=1 {
                for dy in -1i64..=1 {
                    let base =
                        ((z as i64 + dz) as usize * n + (y as i64 + dy) as usize) * n + (x - 1);
                    sum += ctx
                        .tx
                        .with_f64s(grid, base, base + 3, |row| row[0] + row[1] + row[2]);
                }
            }
            let old = ctx.tx.read_f64(grid, c);
            let new = Self::relax(old, sum / 27.0, f[c]);
            ctx.tx.work(60);
            err.max(ctx, (new - old).abs());
            ctx.tx.write_f64(grid, c, new);
        }
    }

    /// Runs the full program under `probe`.
    ///
    /// # Errors
    ///
    /// Propagates runtime aborts from any sweep.
    #[allow(clippy::type_complexity)]
    pub fn run(&self, probe: &Probe) -> Result<(Vec<f64>, usize, RunStats, SimClock), RunError> {
        let f = self.source();
        let cells = self.interior();
        let mut heap = Heap::new();
        let mut reds = RedVars::new();
        let grid = heap.alloc(ObjData::zeros_f64(self.n * self.n * self.n));
        let err = BoundScalar::declare(&mut heap, &mut reds, "err", RedVal::F64(0.0));

        let params = probe.exec_params(&reds);
        let was_reduced = !params.reductions.is_empty();
        let model = self.cost_model();
        let mut obs = SimObserver::new(&model, params.workers);
        let mut stats = RunStats::default();
        let mut sweeps = 0;
        loop {
            err.seq_set(&mut heap, &mut reds, RedVal::F64(0.0));
            let body = self.body(&f, &cells, grid, err);
            let sweep_stats = alter_runtime::run_loop_observed(
                &mut heap,
                &mut reds,
                &mut RangeSpace::new(0, cells.len() as u64),
                &params,
                probe.driver(),
                body,
                &mut obs,
            )?;
            stats.absorb(&sweep_stats);
            sweeps += 1;
            let e = err.seq_get_sync(&mut heap, &mut reds, was_reduced).as_f64();
            if e < self.threshold || sweeps >= self.max_sweeps {
                break;
            }
        }
        let mut clock = obs.into_clock();
        clock.add_sequential(sweeps as f64 * 10.0);
        let grid = heap.get(grid).f64s().to_vec();
        Ok((grid, sweeps, stats, clock))
    }
}

impl InferTarget for Sg3d {
    fn name(&self) -> &str {
        self.name
    }

    fn run_sequential(&self) -> ProgramOutput {
        let (grid, sweeps) = self.run_sequential_raw();
        ProgramOutput {
            floats: grid,
            ints: vec![sweeps as i64],
        }
    }

    fn run_probe(&self, probe: &Probe) -> Result<ProbeRun, RunError> {
        let (grid, sweeps, stats, clock) = self.run(probe)?;
        Ok(ProbeRun {
            output: ProgramOutput {
                floats: grid,
                ints: vec![sweeps as i64],
            },
            stats,
            clock,
        })
    }

    fn probe_summary(&self) -> LoopSummary {
        let f = self.source();
        let cells = self.interior();
        let mut heap = Heap::new();
        let mut reds = RedVars::new();
        let grid = heap.alloc(ObjData::zeros_f64(self.n * self.n * self.n));
        let err = BoundScalar::declare(&mut heap, &mut reds, "err", RedVal::F64(0.0));
        let body = self.body(&f, &cells, grid, err);
        let mut s =
            summarize_dependences(&mut heap, &mut RangeSpace::new(0, cells.len() as u64), body);
        s.label("err", err.object());
        s
    }

    fn loop_spec(&self) -> Option<LoopSpec> {
        // Mirror `probe_summary`'s heap construction so ObjIds line up.
        let words = (self.n * self.n * self.n) as u32;
        let mut heap = Heap::new();
        let mut reds = RedVars::new();
        let grid = heap.alloc(ObjData::zeros_f64(self.n * self.n * self.n));
        let err = BoundScalar::declare(&mut heap, &mut reds, "err", RedVal::F64(0.0));
        let mut spec = LoopSpec::new(self.interior().len() as u64, heap.high_water());
        // The shuffled sweep order makes the stencil's 27-point neighbour
        // window and own-cell write data-dependent per ordinal; the error
        // maximum is the one shared scalar, updated every iteration.
        let grid_r = spec.region("grid", vec![grid], words);
        spec.access(
            grid_r,
            Member::At(0),
            Words::Unknown { bound: words },
            AccessKind::Read,
        );
        spec.access(
            grid_r,
            Member::At(0),
            Words::Unknown { bound: words },
            AccessKind::Write,
        );
        let err_r = spec.labeled_region("err", err.object(), "err");
        spec.access(
            err_r,
            Member::At(0),
            Words::Range { lo: 0, hi: 1 },
            AccessKind::Reduce(RedOp::Max),
        );
        Some(spec)
    }

    fn reduction_candidates(&self) -> Vec<String> {
        vec!["err".into()]
    }

    fn validate(&self, reference: &ProgramOutput, candidate: &ProgramOutput) -> bool {
        if candidate.ints.first().copied().unwrap_or(0) >= self.max_sweeps as i64 {
            return false;
        }
        let r = ProgramOutput::from_floats(reference.floats.clone());
        let c = ProgramOutput::from_floats(candidate.floats.clone());
        r.approx_eq(&c, 1e-4)
    }
}

impl Benchmark for Sg3d {
    fn loop_weight(&self) -> f64 {
        0.96 // Table 2
    }

    fn chunk_factor(&self) -> usize {
        4 // Table 4: SG3D cf = 4
    }

    fn best_config(&self) -> (Model, Option<(String, RedOp)>) {
        (Model::StaleReads, Some(("err".into(), RedOp::Max)))
    }

    fn cost_model(&self) -> CostModel {
        CostModel::memory_bound(3.0) // stencils stream memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alter_infer::{infer, InferConfig};

    fn tiny() -> Sg3d {
        Sg3d {
            name: "SG3D",
            n: 6,
            threshold: 1e-7,
            max_sweeps: 150,
            seed: 4,
        }
    }

    #[test]
    fn sequential_stencil_converges() {
        let sg = tiny();
        let (grid, sweeps) = sg.run_sequential_raw();
        assert!(sweeps > 2 && sweeps < sg.max_sweeps);
        assert!(grid.iter().all(|v| v.is_finite()));
        // Boundary cells stay zero.
        assert_eq!(grid[sg.idx(0, 3, 3)], 0.0);
    }

    #[test]
    fn stale_with_max_reduction_matches_and_is_conflict_free() {
        let sg = tiny();
        let seq = sg.run_sequential();
        let mut probe = Probe::new(Model::StaleReads, 4, 4);
        probe.reduction = Some(("err".into(), RedOp::Max));
        let run = sg.run_probe(&probe).unwrap();
        assert!(sg.validate(&seq, &run.output));
        assert_eq!(run.stats.retries(), 0, "disjoint writes: no WAW conflicts");
    }

    #[test]
    fn plus_reduction_validates_but_converges_slower() {
        let sg = tiny();
        let seq = sg.run_sequential();
        let mut max_probe = Probe::new(Model::StaleReads, 4, 4);
        max_probe.reduction = Some(("err".into(), RedOp::Max));
        let mut add_probe = Probe::new(Model::StaleReads, 4, 4);
        add_probe.reduction = Some(("err".into(), RedOp::Add));
        let with_max = sg.run_probe(&max_probe).unwrap();
        let with_add = sg.run_probe(&add_probe).unwrap();
        assert!(
            sg.validate(&seq, &with_add.output),
            "+ still converges correctly"
        );
        assert!(
            with_add.output.ints[0] > with_max.output.ints[0],
            "+ overestimates the error and needs more sweeps: {} !> {}",
            with_add.output.ints[0],
            with_max.output.ints[0]
        );
    }

    #[test]
    fn stale_alone_has_high_conflicts() {
        let sg = tiny();
        let probe = Probe::new(Model::StaleReads, 4, 4);
        let run = sg.run_probe(&probe).unwrap();
        assert!(
            run.stats.retry_rate() > 0.5,
            "unannotated err serializes: {:.2}",
            run.stats.retry_rate()
        );
    }

    #[test]
    fn inference_finds_stale_plus_reduction() {
        let sg = tiny();
        let report = infer(
            &sg,
            &InferConfig {
                workers: 4,
                chunk: 4,
                ..Default::default()
            },
        );
        assert!(report.dep.any());
        assert!(!report.stale_reads.is_success());
        assert!(!report.out_of_order.is_success());
        assert!(!report.tls.is_success());
        let ok = report.successful_reductions();
        assert!(
            ok.iter()
                .any(|r| r.op == RedOp::Max && r.model == Model::StaleReads),
            "StaleReads + Reduction(err, max) must be valid"
        );
        // The paper's Table 3 lists max/+ for SG3D.
        assert!(report.reduction_cell().contains("max"));
    }
}
