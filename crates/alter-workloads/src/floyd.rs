//! Floyd — all-pairs shortest paths by repeated relaxation (the
//! dynamic-programming dwarf).
//!
//! "Though the loop has a tight dependence chain, it turns out that even if
//! some true dependences are violated, all possible paths between each pair
//! of vertices are still evaluated" (Table 2, citing Tarjan's algebraic
//! path problems).
//!
//! We parallelize the `k` loop ("we report results for the nesting level
//! that leads to the most parallelism", §7) and — making the
//! algebraic-path framing explicit — wrap it in a fixpoint loop: relaxation
//! passes repeat until no distance improves. Sequentially one pass suffices
//! (classic Floyd-Warshall); under `StaleReads` a pass may miss chained
//! improvements whose intermediate `k`s shared a snapshot, and the next
//! pass picks them up. Writes happen only on improvement, so write sets are
//! sparse and snapshot isolation commits almost everything; the read set of
//! an iteration is the whole matrix, so `RAW`-checking models (TLS,
//! OutOfOrder) conflict with essentially every concurrent improvement and
//! serialize.

use crate::common::{rng, Benchmark, Scale};
use alter_analyze::absint::{AccessKind, LoopSpec, Member, Words};
use alter_heap::{Heap, ObjData, ObjId};
use alter_infer::{InferTarget, Model, Probe, ProbeRun, ProgramOutput};
use alter_runtime::{
    summarize_dependences, LoopSummary, RangeSpace, RedOp, RedVars, RunError, RunStats, TxCtx,
};
use alter_sim::{CostModel, SimClock, SimObserver};

const INF: f64 = 1e30;

/// The Floyd-Warshall benchmark.
#[derive(Clone, Debug)]
pub struct Floyd {
    name: &'static str,
    n: usize,
    /// Probability of a direct edge.
    density: f64,
    max_passes: usize,
    seed: u64,
}

impl Floyd {
    /// The benchmark at the given scale (the paper uses 1000/2000 nodes).
    pub fn new(scale: Scale) -> Self {
        Floyd {
            name: "Floyd",
            n: match scale {
                Scale::Inference => 80,
                Scale::Paper => 128,
            },
            density: 0.12,
            max_passes: 8,
            seed: 0xf107,
        }
    }

    /// Deterministic weighted digraph as a dense distance matrix.
    pub fn edges(&self) -> Vec<f64> {
        let mut r = rng(self.seed);
        let n = self.n;
        let mut m = vec![INF; n * n];
        for i in 0..n {
            m[i * n + i] = 0.0;
            for j in 0..n {
                if i != j && r.gen_range(0.0..1.0) < self.density {
                    m[i * n + j] = r.gen_range(1.0..10.0);
                }
            }
        }
        m
    }

    /// Classic sequential Floyd-Warshall (single pass).
    pub fn run_sequential_raw(&self) -> Vec<f64> {
        let n = self.n;
        let mut m = self.edges();
        for k in 0..n {
            for i in 0..n {
                let pik = m[i * n + k];
                if pik >= INF {
                    continue;
                }
                for j in 0..n {
                    let cand = pik + m[k * n + j];
                    if cand < m[i * n + j] {
                        m[i * n + j] = cand;
                    }
                }
            }
        }
        m
    }

    /// One relaxation step for iteration `k`: reads the whole matrix,
    /// writes only improved cells.
    fn body(&self, path: ObjId) -> impl Fn(&mut TxCtx<'_>, u64) + Sync {
        let n = self.n;
        move |ctx, iter| {
            let k = iter as usize;
            let row_k: Vec<f64> = ctx.tx.with_f64s(path, k * n, (k + 1) * n, |r| r.to_vec());
            for i in 0..n {
                let row_i: Vec<f64> = ctx.tx.with_f64s(path, i * n, (i + 1) * n, |r| r.to_vec());
                let pik = row_i[k];
                if pik >= INF {
                    continue;
                }
                ctx.tx.work(2 * n as u64);
                for j in 0..n {
                    let cand = pik + row_k[j];
                    if cand < row_i[j] {
                        ctx.tx.write_f64(path, i * n + j, cand);
                    }
                }
            }
        }
    }

    /// Runs the relax-to-fixpoint program under `probe`.
    ///
    /// # Errors
    ///
    /// Propagates runtime aborts from any pass.
    #[allow(clippy::type_complexity)]
    pub fn run(&self, probe: &Probe) -> Result<(Vec<f64>, usize, RunStats, SimClock), RunError> {
        let n = self.n;
        let mut heap = Heap::new();
        let mut reds = RedVars::new();
        let path = heap.alloc(ObjData::F64(self.edges()));
        let params = probe.exec_params(&reds);
        let model = self.cost_model();
        let mut obs = SimObserver::new(&model, params.workers);
        let mut stats = RunStats::default();
        let mut passes = 0;
        loop {
            let before: Vec<f64> = heap.get(path).f64s().to_vec();
            let body = self.body(path);
            let pass_stats = alter_runtime::run_loop_observed(
                &mut heap,
                &mut reds,
                &mut RangeSpace::new(0, n as u64),
                &params,
                probe.driver(),
                body,
                &mut obs,
            )?;
            stats.absorb(&pass_stats);
            passes += 1;
            let changed = heap.get(path).f64s() != &before[..];
            if !changed || passes >= self.max_passes {
                break;
            }
        }
        let mut clock = obs.into_clock();
        clock.add_sequential(passes as f64 * (n * n) as f64); // fixpoint check
        let m = heap.get(path).f64s().to_vec();
        Ok((m, passes, stats, clock))
    }
}

impl InferTarget for Floyd {
    fn name(&self) -> &str {
        self.name
    }

    fn run_sequential(&self) -> ProgramOutput {
        ProgramOutput::from_floats(self.run_sequential_raw())
    }

    fn run_probe(&self, probe: &Probe) -> Result<ProbeRun, RunError> {
        let (m, _passes, stats, clock) = self.run(probe)?;
        Ok(ProbeRun {
            output: ProgramOutput::from_floats(m),
            stats,
            clock,
        })
    }

    fn probe_summary(&self) -> LoopSummary {
        let mut heap = Heap::new();
        let path = heap.alloc(ObjData::F64(self.edges()));
        let body = self.body(path);
        summarize_dependences(&mut heap, &mut RangeSpace::new(0, self.n as u64), body)
    }

    fn loop_spec(&self) -> Option<LoopSpec> {
        // Mirror `probe_summary`'s heap construction so ObjIds line up.
        let n = self.n as u64;
        let nn = (self.n * self.n) as u32;
        let mut heap = Heap::new();
        let path = heap.alloc(ObjData::F64(self.edges()));
        let mut spec = LoopSpec::new(n, heap.high_water());
        let path_r = spec.region("path", vec![path], nn);
        // Iteration k reads row k (the affine pivot window) and scans every
        // row; improvement writes land on data-dependent cells anywhere in
        // the matrix.
        spec.access(
            path_r,
            Member::At(0),
            Words::Affine {
                scale: n,
                offset: 0,
                width: self.n as u32,
            },
            AccessKind::Read,
        );
        spec.access(
            path_r,
            Member::At(0),
            Words::Range { lo: 0, hi: nn },
            AccessKind::Read,
        );
        spec.access_if(
            path_r,
            Member::At(0),
            Words::Unknown { bound: nn },
            AccessKind::Write,
        );
        Some(spec)
    }

    fn validate(&self, reference: &ProgramOutput, candidate: &ProgramOutput) -> bool {
        // Shortest-path distances must match exactly (they are sums of the
        // same edge weights; the fixpoint is unique).
        reference.approx_eq(candidate, 1e-9)
    }
}

impl Benchmark for Floyd {
    fn loop_weight(&self) -> f64 {
        1.0 // Table 2
    }

    fn chunk_factor(&self) -> usize {
        4
    }

    fn best_config(&self) -> (Model, Option<(String, RedOp)>) {
        (Model::StaleReads, None)
    }

    fn cost_model(&self) -> CostModel {
        CostModel::memory_bound(3.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alter_infer::{infer, InferConfig, Outcome};

    fn tiny() -> Floyd {
        Floyd {
            name: "Floyd",
            n: 24,
            density: 0.2,
            max_passes: 8,
            seed: 5,
        }
    }

    #[test]
    fn sequential_matches_dijkstra_sanity() {
        // Triangle inequality: m[i][j] <= m[i][k] + m[k][j] at fixpoint.
        let fl = tiny();
        let m = fl.run_sequential_raw();
        let n = fl.n;
        for i in 0..n {
            for k in 0..n {
                for j in 0..n {
                    assert!(
                        m[i * n + j] <= m[i * n + k] + m[k * n + j] + 1e-9,
                        "triangle inequality violated"
                    );
                }
            }
        }
    }

    #[test]
    fn stale_reads_reaches_the_same_fixpoint() {
        let fl = tiny();
        let seq = fl.run_sequential();
        let probe = Probe::new(Model::StaleReads, 4, 2);
        let (m, passes, stats, _) = fl.run(&probe).unwrap();
        assert!(
            fl.validate(&seq, &ProgramOutput::from_floats(m)),
            "fixpoint must be the true shortest paths"
        );
        assert!(passes <= 4, "stale relaxation converges quickly: {passes}");
        assert!(
            stats.retry_rate() < 0.5,
            "improvement writes are sparse: {:.2}",
            stats.retry_rate()
        );
    }

    #[test]
    fn raw_models_serialize() {
        let fl = tiny();
        let report = infer(
            &fl,
            &InferConfig {
                workers: 4,
                chunk: 2,
                ..Default::default()
            },
        );
        assert!(report.dep.raw, "relaxation reads earlier writes");
        assert!(
            report.stale_reads.is_success(),
            "stale: {}",
            report.stale_reads
        );
        assert!(
            matches!(report.tls, Outcome::HighConflicts | Outcome::Timeout),
            "tls: {}",
            report.tls
        );
        assert!(
            matches!(
                report.out_of_order,
                Outcome::HighConflicts | Outcome::Timeout
            ),
            "ooo: {}",
            report.out_of_order
        );
    }
}
