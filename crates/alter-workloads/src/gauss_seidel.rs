//! GSdense / GSsparse — the Gauss-Seidel iterative solver of Figure 1.
//!
//! ```c
//! while (CheckConvergence(A, X, B, n) == 0) {
//!   [StaleReads]
//!   for (i = 0; i < n; i++) {
//!     sum  = scalarProduct(A[i], X);        // reads ALL of X
//!     sum -= A[i][i] * X[i];
//!     X[i] = (B[i] - sum) / A[i][i];        // writes X[i]
//!   }
//! }
//! ```
//!
//! The inner loop has a tight RAW dependence chain (every write of `X[i]` is
//! read by every later iteration), so speculation and out-of-order commit
//! serialize completely. Under `StaleReads` the writes are disjoint — no
//! WAW conflicts at all — and the algorithm tolerates the stale reads: with
//! a strictly diagonally dominant matrix both the sequential sweep and the
//! chunked-stale sweep are convergent fixed-point iterations with the same
//! fixed point, costing at most a couple of extra sweeps (the paper
//! measures 16→17 dense, 20→21 sparse).
//!
//! `A` and `b` are loop-invariant inputs and live outside the transactional
//! heap (the paper's dominating-instrumentation optimization makes their
//! reads free); the solution vector `X` is one heap allocation.

use crate::common::{rng, uniform_f64s, Benchmark, Scale};
use alter_analyze::absint::{AccessKind, LoopSpec, Member, Words};
use alter_heap::{Heap, ObjData, ObjId};
use alter_infer::{InferTarget, Model, Probe, ProbeRun, ProgramOutput};
use alter_runtime::{
    summarize_dependences, LoopSummary, RangeSpace, RedOp, RedVars, RunError, RunStats, TxCtx,
};
use alter_sim::{CostModel, SimClock, SimObserver};

/// Sparse/dense system `Ax = b` with a strictly diagonally dominant `A`.
#[derive(Clone, Debug)]
pub struct System {
    /// Off-diagonal entries per row: `(column, value)`.
    pub rows: Vec<Vec<(usize, f64)>>,
    /// Diagonal entries.
    pub diag: Vec<f64>,
    /// Right-hand side.
    pub b: Vec<f64>,
}

impl System {
    /// Number of unknowns.
    pub fn n(&self) -> usize {
        self.diag.len()
    }

    /// Max-norm residual `‖b − Ax‖∞` — the paper's `CheckConvergence`.
    pub fn residual(&self, x: &[f64]) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..self.n() {
            let mut ax = self.diag[i] * x[i];
            for &(j, v) in &self.rows[i] {
                ax += v * x[j];
            }
            worst = worst.max((self.b[i] - ax).abs());
        }
        worst
    }
}

/// The Gauss-Seidel benchmark (dense or sparse variant).
#[derive(Clone, Debug)]
pub struct GaussSeidel {
    name: &'static str,
    n: usize,
    /// Off-diagonal nonzeros per row; `None` = dense.
    nnz: Option<usize>,
    eps: f64,
    max_sweeps: usize,
    seed: u64,
}

impl GaussSeidel {
    /// The GSdense benchmark at the given scale.
    pub fn dense(scale: Scale) -> Self {
        GaussSeidel {
            name: "GSdense",
            n: match scale {
                Scale::Inference => 64,
                Scale::Paper => 320,
            },
            nnz: None,
            eps: 1e-9,
            max_sweeps: 400,
            seed: 0x65de,
        }
    }

    /// The GSsparse benchmark at the given scale.
    pub fn sparse(scale: Scale) -> Self {
        GaussSeidel {
            name: "GSsparse",
            n: match scale {
                Scale::Inference => 512,
                Scale::Paper => 2048,
            },
            nnz: Some(8),
            eps: 1e-9,
            max_sweeps: 400,
            seed: 0x65e5,
        }
    }

    /// Generates the system deterministically from the benchmark seed.
    pub fn build(&self) -> System {
        let mut r = rng(self.seed);
        let mut rows = Vec::with_capacity(self.n);
        let mut diag = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let mut row: Vec<(usize, f64)> = match self.nnz {
                None => (0..self.n)
                    .filter(|&j| j != i)
                    .map(|j| (j, r.gen_range(-1.0..1.0)))
                    .collect(),
                Some(k) => {
                    let mut cols = Vec::new();
                    while cols.len() < k.min(self.n - 1) {
                        let j = r.gen_range(0..self.n);
                        if j != i && !cols.contains(&j) {
                            cols.push(j);
                        }
                    }
                    cols.into_iter()
                        .map(|j| (j, r.gen_range(-1.0..1.0)))
                        .collect()
                }
            };
            row.sort_by_key(|&(j, _)| j);
            // Strict diagonal dominance: |a_ii| = 2 Σ|a_ij| guarantees both
            // the sequential and the stale-reads sweep converge.
            let off: f64 = row.iter().map(|&(_, v)| v.abs()).sum();
            diag.push(2.0 * off.max(1.0));
            rows.push(row);
        }
        let b = uniform_f64s(&mut r, self.n, -1.0, 1.0);
        System { rows, diag, b }
    }

    /// Plain sequential Gauss-Seidel; returns the solution and sweep count.
    /// Convergence is detected by the max change of a sweep dropping below
    /// `eps` — an O(n) check, like the paper's per-sweep CheckConvergence.
    pub fn solve_sequential(&self) -> (Vec<f64>, usize) {
        let sys = self.build();
        let mut x = vec![0.0; sys.n()];
        let mut sweeps = 0;
        loop {
            let mut change = 0.0f64;
            for i in 0..sys.n() {
                let mut sum = 0.0;
                for &(j, v) in &sys.rows[i] {
                    sum += v * x[j];
                }
                let new = (sys.b[i] - sum) / sys.diag[i];
                change = change.max((new - x[i]).abs());
                x[i] = new;
            }
            sweeps += 1;
            if change <= self.eps || sweeps >= self.max_sweeps {
                break;
            }
        }
        (x, sweeps)
    }

    fn body<'a>(&self, sys: &'a System, xvec: ObjId) -> impl Fn(&mut TxCtx<'_>, u64) + Sync + 'a {
        let dense = self.nnz.is_none();
        let n = sys.n();
        move |ctx, iter| {
            let i = iter as usize;
            let sum = if dense {
                // scalarProduct reads all of XVector: one range read.
                ctx.tx.with_f64s(xvec, 0, n, |x| {
                    sys.rows[i].iter().map(|&(j, v)| v * x[j]).sum::<f64>()
                })
            } else {
                // Sparse rows read only their nonzero columns.
                let mut sum = 0.0;
                for &(j, v) in &sys.rows[i] {
                    sum += v * ctx.tx.read_f64(xvec, j);
                }
                sum
            };
            ctx.tx.work(2 * sys.rows[i].len() as u64);
            // The matrix row streams from memory even though it is
            // loop-invariant (uninstrumented): it dominates the kernel's
            // bandwidth demand.
            ctx.tx.traffic(sys.rows[i].len() as u64);
            ctx.tx.write_f64(xvec, i, (sys.b[i] - sum) / sys.diag[i]);
        }
    }

    /// Runs the full program (outer convergence loop + inner ALTER loop)
    /// under `probe`, returning the solution, sweep count, accumulated
    /// statistics and the virtual clock.
    ///
    /// # Errors
    ///
    /// Propagates runtime aborts from any sweep.
    pub fn run(&self, probe: &Probe) -> Result<(Vec<f64>, usize, RunStats, SimClock), RunError> {
        self.run_with_model(probe, &self.cost_model())
    }

    /// Like [`GaussSeidel::run`] with an explicit cost model — the manual-
    /// parallelization baseline of Figure 9 reuses the same execution with
    /// the instrumentation and commit costs stripped.
    #[allow(clippy::type_complexity)]
    pub fn run_with_model(
        &self,
        probe: &Probe,
        model: &CostModel,
    ) -> Result<(Vec<f64>, usize, RunStats, SimClock), RunError> {
        let sys = self.build();
        let mut heap = Heap::new();
        let xvec = heap.alloc(ObjData::zeros_f64(sys.n()));
        let mut reds = RedVars::new();
        let params = probe.exec_params(&reds);
        let mut obs = SimObserver::new(model, params.workers);
        let mut stats = RunStats::default();
        let mut sweeps = 0;

        loop {
            let before: Vec<f64> = heap.get(xvec).f64s().to_vec();
            let body = self.body(&sys, xvec);
            let sweep_stats = alter_runtime::run_loop_observed(
                &mut heap,
                &mut reds,
                &mut RangeSpace::new(0, sys.n() as u64),
                &params,
                probe.driver(),
                body,
                &mut obs,
            )?;
            stats.absorb(&sweep_stats);
            sweeps += 1;
            let change = heap
                .get(xvec)
                .f64s()
                .iter()
                .zip(&before)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            if change <= self.eps || sweeps >= self.max_sweeps {
                break;
            }
        }
        let mut clock = obs.into_clock();
        // The per-sweep O(n) convergence check is sequential program text.
        clock.add_sequential(sweeps as f64 * sys.n() as f64 * 3.0);
        let x = heap.get(xvec).f64s().to_vec();
        Ok((x, sweeps, stats, clock))
    }
}

impl InferTarget for GaussSeidel {
    fn name(&self) -> &str {
        self.name
    }

    fn run_sequential(&self) -> ProgramOutput {
        let (x, sweeps) = self.solve_sequential();
        ProgramOutput {
            floats: x,
            ints: vec![sweeps as i64],
        }
    }

    fn run_probe(&self, probe: &Probe) -> Result<ProbeRun, RunError> {
        let (x, sweeps, stats, clock) = self.run(probe)?;
        Ok(ProbeRun {
            output: ProgramOutput {
                floats: x,
                ints: vec![sweeps as i64],
            },
            stats,
            clock,
        })
    }

    fn probe_summary(&self) -> LoopSummary {
        let sys = self.build();
        let mut heap = Heap::new();
        let xvec = heap.alloc(ObjData::zeros_f64(sys.n()));
        let body = self.body(&sys, xvec);
        summarize_dependences(&mut heap, &mut RangeSpace::new(0, sys.n() as u64), body)
    }

    fn loop_spec(&self) -> Option<LoopSpec> {
        // Mirror `probe_summary`'s heap construction so ObjIds line up.
        let n = self.n as u32;
        let mut heap = Heap::new();
        let xvec = heap.alloc(ObjData::zeros_f64(self.n));
        let mut spec = LoopSpec::new(self.n as u64, heap.high_water());
        let x_r = spec.region("x", vec![xvec], n);
        // Dense rows scan the whole solution vector; sparse rows read only
        // their (data-dependent) nonzero columns. Either way iteration i
        // blind-writes its own slot X[i] — the Figure 1 RAW chain with
        // provably disjoint writes.
        match self.nnz {
            None => spec.access(
                x_r,
                Member::At(0),
                Words::Range { lo: 0, hi: n },
                AccessKind::Read,
            ),
            Some(_) => spec.access(
                x_r,
                Member::At(0),
                Words::Unknown { bound: n },
                AccessKind::Read,
            ),
        }
        spec.access(
            x_r,
            Member::At(0),
            Words::Affine {
                scale: 1,
                offset: 0,
                width: 1,
            },
            AccessKind::Write,
        );
        Some(spec)
    }

    fn validate(&self, reference: &ProgramOutput, candidate: &ProgramOutput) -> bool {
        // Both executions must converge to the solution of Ax = b; the
        // sweep counts (ints) may legitimately differ.
        if candidate.ints.first().copied().unwrap_or(0) >= self.max_sweeps as i64 {
            return false; // never converged
        }
        let r = ProgramOutput::from_floats(reference.floats.clone());
        let c = ProgramOutput::from_floats(candidate.floats.clone());
        r.approx_eq(&c, 1e-4)
    }
}

impl Benchmark for GaussSeidel {
    fn loop_weight(&self) -> f64 {
        1.0 // Table 2: 100%
    }

    fn chunk_factor(&self) -> usize {
        32 // Table 4: GSdense 32, GSsparse 32
    }

    fn best_config(&self) -> (Model, Option<(String, RedOp)>) {
        (Model::StaleReads, None)
    }

    fn cost_model(&self) -> CostModel {
        // "both GSdense and GSsparse are memory bound and hence do not
        // scale well beyond 4 cores" (§7.2). With roughly two flops per
        // streamed word, a shared budget of 1.2 words per time unit caps
        // the kernel around 2.5x.
        CostModel::memory_bound(1.2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alter_infer::{infer, InferConfig, Outcome};

    fn tiny() -> GaussSeidel {
        GaussSeidel {
            name: "GSdense",
            n: 24,
            nnz: None,
            eps: 1e-9,
            max_sweeps: 300,
            seed: 1,
        }
    }

    fn tiny_sparse() -> GaussSeidel {
        GaussSeidel {
            name: "GSsparse",
            n: 64,
            nnz: Some(4),
            eps: 1e-9,
            max_sweeps: 300,
            seed: 2,
        }
    }

    #[test]
    fn sequential_solver_actually_solves_the_system() {
        for gs in [tiny(), tiny_sparse()] {
            let sys = gs.build();
            let (x, sweeps) = gs.solve_sequential();
            assert!(sys.residual(&x) <= gs.eps, "{}", gs.name);
            assert!(sweeps > 1 && sweeps < gs.max_sweeps);
        }
    }

    #[test]
    fn stale_reads_converges_to_the_same_solution() {
        for gs in [tiny(), tiny_sparse()] {
            let seq = gs.run_sequential();
            let probe = Probe::new(Model::StaleReads, 4, 4);
            let run = gs.run_probe(&probe).unwrap();
            assert!(gs.validate(&seq, &run.output), "{}", gs.name);
            assert_eq!(run.stats.retries(), 0, "no WAW conflicts for {}", gs.name);
            // Broken RAW dependences may cost a few extra sweeps.
            let seq_sweeps = seq.ints[0];
            let par_sweeps = run.output.ints[0];
            assert!(
                par_sweeps >= seq_sweeps && par_sweeps <= seq_sweeps + 8,
                "{}: {seq_sweeps} -> {par_sweeps}",
                gs.name
            );
        }
    }

    #[test]
    fn inference_finds_only_stale_reads() {
        let gs = tiny();
        let report = infer(
            &gs,
            &InferConfig {
                workers: 4,
                chunk: 4,
                ..Default::default()
            },
        );
        assert!(report.dep.raw, "tight RAW chain");
        assert!(!report.dep.waw, "writes are disjoint");
        assert!(
            report.stale_reads.is_success(),
            "stale: {}",
            report.stale_reads
        );
        assert!(!report.tls.is_success(), "tls must fail: {}", report.tls);
        assert!(
            !report.out_of_order.is_success(),
            "ooo must fail: {}",
            report.out_of_order
        );
        assert!(matches!(
            report.tls,
            Outcome::HighConflicts | Outcome::Timeout
        ));
    }

    #[test]
    fn speedup_is_positive_and_saturates_with_bandwidth() {
        let gs = tiny_sparse();
        let s2 = gs.run(&gs.best_probe(2)).unwrap().3.speedup();
        let s4 = gs.run(&gs.best_probe(4)).unwrap().3.speedup();
        assert!(s2 > 1.0, "2 workers must speed up: {s2:.2}");
        assert!(s4 > s2 * 0.9, "4 workers no worse: {s2:.2} -> {s4:.2}");
    }
}
