//! FFT — the two-dimensional iterative FFT solver of the spectral-methods
//! dwarf (from the Parallel Dwarfs project).
//!
//! The row loop has no loop-carried dependences: each iteration performs an
//! in-place radix-2 FFT of its own row. Nonetheless the paper measures a
//! *slowdown* under ALTER: "FFT uses a complex data type, which results in
//! many copy constructors that are instrumented by ALTER" (§7.2). We mirror
//! that faithfully — every butterfly reads and writes its complex operands
//! element-by-element through the instrumented heap, so instrumentation and
//! copy-on-write overhead dwarf the arithmetic (Figure 13 shows speedup
//! < 1).

use crate::common::{rng, uniform_f64s, Benchmark, Scale};
use alter_analyze::absint::{AccessKind, LoopSpec, Member, Words};
use alter_heap::{Heap, ObjData, ObjId};
use alter_infer::{InferTarget, Model, Probe, ProbeRun, ProgramOutput};
use alter_runtime::{
    summarize_dependences, LoopSummary, RangeSpace, RedOp, RedVars, RunError, RunStats, TxCtx,
};
use alter_sim::{CostModel, SimClock, SimObserver};

/// The 2D FFT benchmark.
#[derive(Clone, Debug)]
pub struct Fft {
    name: &'static str,
    /// Rows (each a size-`cols` complex signal; both powers of two).
    rows: usize,
    cols: usize,
    seed: u64,
}

impl Fft {
    /// The benchmark at the given scale (the paper transforms 1024/2048-
    /// point inputs).
    pub fn new(scale: Scale) -> Self {
        let (rows, cols) = match scale {
            Scale::Inference => (32, 32),
            Scale::Paper => (64, 64),
        };
        Fft {
            name: "FFT",
            rows,
            cols,
            seed: 0xff7,
        }
    }

    /// Deterministic complex input, interleaved (re, im) per row.
    pub fn input(&self) -> Vec<Vec<f64>> {
        let mut r = rng(self.seed);
        (0..self.rows)
            .map(|_| uniform_f64s(&mut r, 2 * self.cols, -1.0, 1.0))
            .collect()
    }

    /// In-place radix-2 FFT over an interleaved complex buffer.
    fn fft_inplace(buf: &mut [f64]) {
        let n = buf.len() / 2;
        // Bit-reversal permutation.
        let mut j = 0usize;
        for i in 1..n {
            let mut bit = n >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
            if i < j {
                buf.swap(2 * i, 2 * j);
                buf.swap(2 * i + 1, 2 * j + 1);
            }
        }
        let mut len = 2;
        while len <= n {
            let ang = -2.0 * std::f64::consts::PI / len as f64;
            let (wr, wi) = (ang.cos(), ang.sin());
            let mut i = 0;
            while i < n {
                let (mut cr, mut ci) = (1.0, 0.0);
                for k in 0..len / 2 {
                    let a = i + k;
                    let b = i + k + len / 2;
                    let (ar, ai) = (buf[2 * a], buf[2 * a + 1]);
                    let (br, bi) = (buf[2 * b], buf[2 * b + 1]);
                    let (tr, ti) = (br * cr - bi * ci, br * ci + bi * cr);
                    buf[2 * a] = ar + tr;
                    buf[2 * a + 1] = ai + ti;
                    buf[2 * b] = ar - tr;
                    buf[2 * b + 1] = ai - ti;
                    let (ncr, nci) = (cr * wr - ci * wi, cr * wi + ci * wr);
                    cr = ncr;
                    ci = nci;
                }
                i += len;
            }
            len <<= 1;
        }
    }

    /// Sequential reference: FFT of every row.
    pub fn run_sequential_raw(&self) -> Vec<f64> {
        let mut rows = self.input();
        for row in &mut rows {
            Self::fft_inplace(row);
        }
        rows.into_iter().flatten().collect()
    }

    fn body<'a>(&self, row_objs: &'a [ObjId]) -> impl Fn(&mut TxCtx<'_>, u64) + Sync + 'a {
        let cols = self.cols;
        move |ctx, iter| {
            let obj = row_objs[iter as usize];
            let n = cols;
            // Element-granular butterflies: each complex load/store goes
            // through the instrumented heap, like the paper's instrumented
            // copy constructors.
            let mut j = 0usize;
            for i in 1..n {
                let mut bit = n >> 1;
                while j & bit != 0 {
                    j ^= bit;
                    bit >>= 1;
                }
                j |= bit;
                if i < j {
                    for off in 0..2 {
                        let a = ctx.tx.read_f64(obj, 2 * i + off);
                        let b = ctx.tx.read_f64(obj, 2 * j + off);
                        ctx.tx.write_f64(obj, 2 * i + off, b);
                        ctx.tx.write_f64(obj, 2 * j + off, a);
                    }
                }
            }
            let mut len = 2;
            while len <= n {
                let ang = -2.0 * std::f64::consts::PI / len as f64;
                let (wr, wi) = (ang.cos(), ang.sin());
                let mut i = 0;
                while i < n {
                    let (mut cr, mut ci) = (1.0, 0.0);
                    for k in 0..len / 2 {
                        let a = i + k;
                        let b = i + k + len / 2;
                        let (ar, ai) =
                            (ctx.tx.read_f64(obj, 2 * a), ctx.tx.read_f64(obj, 2 * a + 1));
                        let (br, bi) =
                            (ctx.tx.read_f64(obj, 2 * b), ctx.tx.read_f64(obj, 2 * b + 1));
                        let (tr, ti) = (br * cr - bi * ci, br * ci + bi * cr);
                        ctx.tx.write_f64(obj, 2 * a, ar + tr);
                        ctx.tx.write_f64(obj, 2 * a + 1, ai + ti);
                        ctx.tx.write_f64(obj, 2 * b, ar - tr);
                        ctx.tx.write_f64(obj, 2 * b + 1, ai - ti);
                        ctx.tx.work(4);
                        let (ncr, nci) = (cr * wr - ci * wi, cr * wi + ci * wr);
                        cr = ncr;
                        ci = nci;
                    }
                    i += len;
                }
                len <<= 1;
            }
        }
    }

    /// Runs the row-FFT loop under `probe`.
    ///
    /// # Errors
    ///
    /// Propagates runtime aborts.
    pub fn run(&self, probe: &Probe) -> Result<(Vec<f64>, RunStats, SimClock), RunError> {
        let input = self.input();
        let mut heap = Heap::new();
        let mut reds = RedVars::new();
        let row_objs: Vec<ObjId> = input
            .iter()
            .map(|row| heap.alloc(ObjData::F64(row.clone())))
            .collect();
        let params = probe.exec_params(&reds);
        let model = self.cost_model();
        let mut obs = SimObserver::new(&model, params.workers);
        let body = self.body(&row_objs);
        let stats = alter_runtime::run_loop_observed(
            &mut heap,
            &mut reds,
            &mut RangeSpace::new(0, self.rows as u64),
            &params,
            probe.driver(),
            body,
            &mut obs,
        )?;
        let out: Vec<f64> = row_objs
            .iter()
            .flat_map(|o| heap.get(*o).f64s().to_vec())
            .collect();
        Ok((out, stats, obs.into_clock()))
    }
}

impl InferTarget for Fft {
    fn name(&self) -> &str {
        self.name
    }

    fn run_sequential(&self) -> ProgramOutput {
        ProgramOutput::from_floats(self.run_sequential_raw())
    }

    fn run_probe(&self, probe: &Probe) -> Result<ProbeRun, RunError> {
        let (out, stats, clock) = self.run(probe)?;
        Ok(ProbeRun {
            output: ProgramOutput::from_floats(out),
            stats,
            clock,
        })
    }

    fn probe_summary(&self) -> LoopSummary {
        let input = self.input();
        let mut heap = Heap::new();
        let row_objs: Vec<ObjId> = input
            .iter()
            .map(|row| heap.alloc(ObjData::F64(row.clone())))
            .collect();
        let body = self.body(&row_objs);
        summarize_dependences(&mut heap, &mut RangeSpace::new(0, self.rows as u64), body)
    }

    fn loop_spec(&self) -> Option<LoopSpec> {
        // Mirror `probe_summary`'s heap construction so ObjIds line up.
        let mut heap = Heap::new();
        let rows: Vec<ObjId> = self
            .input()
            .iter()
            .map(|row| heap.alloc(ObjData::F64(row.clone())))
            .collect();
        let width = (2 * self.cols) as u32;
        let mut spec = LoopSpec::new(self.rows as u64, heap.high_water());
        // Each iteration FFTs its own interleaved row in place — the whole
        // row is read and rewritten, but rows are ordinal-injective, so no
        // iteration touches another's (Table 3: Dep = No).
        let r = spec.region("rows", rows, width);
        spec.access(
            r,
            Member::Each,
            Words::Range { lo: 0, hi: width },
            AccessKind::Update,
        );
        Some(spec)
    }

    fn validate(&self, reference: &ProgramOutput, candidate: &ProgramOutput) -> bool {
        reference.approx_eq(candidate, 1e-9)
    }
}

impl Benchmark for Fft {
    fn loop_weight(&self) -> f64 {
        1.0 // Table 2 (both loops combined)
    }

    fn chunk_factor(&self) -> usize {
        2
    }

    fn best_config(&self) -> (Model, Option<(String, RedOp)>) {
        (Model::StaleReads, None)
    }

    fn cost_model(&self) -> CostModel {
        // Every complex assignment goes through an instrumented copy
        // constructor — a call plus instrumentation rather than a plain
        // store — which is the overhead the paper blames for FFT's
        // slowdown ("this effect could be avoided by a more precise alias
        // analysis or via conversion of complex types to primitive types",
        // §7.2).
        CostModel {
            per_instr_op: 20.0,
            ..CostModel::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alter_infer::{infer, InferConfig};

    fn tiny() -> Fft {
        Fft {
            name: "FFT",
            rows: 8,
            cols: 16,
            seed: 11,
        }
    }

    #[test]
    fn fft_of_constant_signal_concentrates_in_dc() {
        let mut buf = vec![0.0; 32]; // 16 complex points
        for i in 0..16 {
            buf[2 * i] = 1.0;
        }
        Fft::fft_inplace(&mut buf);
        assert!((buf[0] - 16.0).abs() < 1e-9, "DC bin = N");
        assert!(buf[2..].iter().all(|v| v.abs() < 1e-9), "other bins zero");
    }

    #[test]
    fn parallel_rows_match_sequential_exactly() {
        let f = tiny();
        let seq = f.run_sequential();
        let run = f.run_probe(&Probe::new(Model::StaleReads, 4, 2)).unwrap();
        assert!(f.validate(&seq, &run.output));
        assert_eq!(run.stats.retries(), 0);
    }

    #[test]
    fn no_dependences_and_all_models_succeed() {
        let f = tiny();
        let report = infer(
            &f,
            &InferConfig {
                workers: 4,
                chunk: 2,
                ..Default::default()
            },
        );
        assert!(!report.dep.any());
        assert!(report.tls.is_success());
        assert!(report.out_of_order.is_success());
        assert!(report.stale_reads.is_success());
    }

    #[test]
    fn instrumentation_overhead_causes_slowdown() {
        // The Figure 13 effect: ALTER makes FFT slower than sequential.
        let f = tiny();
        let (_, _, clock) = f.run(&Probe::new(Model::StaleReads, 4, 2)).unwrap();
        assert!(
            clock.speedup() < 1.0,
            "element-wise instrumentation must dominate: {:.2}",
            clock.speedup()
        );
    }
}
