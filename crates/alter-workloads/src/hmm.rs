//! HMM — the hidden-Markov-model solver of the graphical-models dwarf
//! (from the Parallel Dwarfs project): the forward algorithm.
//!
//! For each observation step the loop over states computes
//! `alpha'[s] = B[s][obs] · Σ_s' alpha[s'] · A[s'][s]` — reads of the
//! previous step's (loop-invariant) alpha vector and a disjoint write per
//! state. No loop-carried dependences (Table 3: Dep = No); speedup is
//! near-linear (Figure 13).

use crate::common::{rng, uniform_f64s, Benchmark, Scale};
use alter_analyze::absint::{AccessKind, LoopSpec, Member, Words};
use alter_heap::{Heap, ObjData, ObjId};
use alter_infer::{InferTarget, Model, Probe, ProbeRun, ProgramOutput};
use alter_runtime::{
    summarize_dependences, LoopSummary, RangeSpace, RedOp, RedVars, RunError, RunStats, TxCtx,
};
use alter_sim::{CostModel, SimClock, SimObserver};

/// The HMM forward-algorithm benchmark.
#[derive(Clone, Debug)]
pub struct Hmm {
    name: &'static str,
    states: usize,
    symbols: usize,
    steps: usize,
    seed: u64,
}

impl Hmm {
    /// The benchmark at the given scale (the paper solves 512/1024-state
    /// models).
    pub fn new(scale: Scale) -> Self {
        Hmm {
            name: "HMM",
            states: match scale {
                Scale::Inference => 64,
                Scale::Paper => 192,
            },
            symbols: 16,
            steps: 24,
            seed: 0x4888,
        }
    }

    /// Deterministic model: transition matrix A (row-stochastic), emission
    /// matrix B, and an observation sequence.
    #[allow(clippy::type_complexity)]
    pub fn model(&self) -> (Vec<Vec<f64>>, Vec<Vec<f64>>, Vec<usize>) {
        let mut r = rng(self.seed);
        let normalize = |mut v: Vec<f64>| {
            let s: f64 = v.iter().sum();
            for x in &mut v {
                *x /= s;
            }
            v
        };
        let a: Vec<Vec<f64>> = (0..self.states)
            .map(|_| normalize(uniform_f64s(&mut r, self.states, 0.1, 1.0)))
            .collect();
        let b: Vec<Vec<f64>> = (0..self.states)
            .map(|_| normalize(uniform_f64s(&mut r, self.symbols, 0.1, 1.0)))
            .collect();
        let obs: Vec<usize> = (0..self.steps)
            .map(|_| r.gen_range(0..self.symbols))
            .collect();
        (a, b, obs)
    }

    /// Sequential forward pass; returns the final (rescaled) alpha vector.
    pub fn run_sequential_raw(&self) -> Vec<f64> {
        let (a, b, obs) = self.model();
        let n = self.states;
        let mut alpha = vec![1.0 / n as f64; n];
        for &o in &obs {
            let mut next = vec![0.0; n];
            for (s, slot) in next.iter_mut().enumerate() {
                let mut acc = 0.0;
                for sp in 0..n {
                    acc += alpha[sp] * a[sp][s];
                }
                *slot = acc * b[s][o];
            }
            let norm: f64 = next.iter().sum();
            for x in &mut next {
                *x /= norm;
            }
            alpha = next;
        }
        alpha
    }

    fn body<'a>(
        &self,
        a: &'a [Vec<f64>],
        b: &'a [Vec<f64>],
        o: usize,
        cur: ObjId,
        next: ObjId,
    ) -> impl Fn(&mut TxCtx<'_>, u64) + Sync + 'a {
        let n = self.states;
        move |ctx, iter| {
            let s = iter as usize;
            let acc = ctx.tx.with_f64s(cur, 0, n, |alpha| {
                alpha
                    .iter()
                    .zip(a.iter())
                    .map(|(al, row)| al * row[s])
                    .sum::<f64>()
            });
            ctx.tx.work(2 * n as u64);
            ctx.tx.write_f64(next, s, acc * b[s][o]);
        }
    }

    /// Runs the full forward pass under `probe`.
    ///
    /// # Errors
    ///
    /// Propagates runtime aborts.
    pub fn run(&self, probe: &Probe) -> Result<(Vec<f64>, RunStats, SimClock), RunError> {
        let (a, b, obs) = self.model();
        let n = self.states;
        let mut heap = Heap::new();
        let mut reds = RedVars::new();
        let mut cur = heap.alloc(ObjData::F64(vec![1.0 / n as f64; n]));
        let mut next = heap.alloc(ObjData::zeros_f64(n));
        let params = probe.exec_params(&reds);
        let model = self.cost_model();
        let mut obs_clock = SimObserver::new(&model, params.workers);
        let mut stats = RunStats::default();
        for &o in &obs {
            let body = self.body(&a, &b, o, cur, next);
            let step_stats = alter_runtime::run_loop_observed(
                &mut heap,
                &mut reds,
                &mut RangeSpace::new(0, n as u64),
                &params,
                probe.driver(),
                body,
                &mut obs_clock,
            )?;
            stats.absorb(&step_stats);
            // Sequential rescale between steps.
            let norm: f64 = heap.get(next).f64s().iter().sum();
            for x in heap.get_mut(next).f64s_mut() {
                *x /= norm;
            }
            std::mem::swap(&mut cur, &mut next);
        }
        let alpha = heap.get(cur).f64s().to_vec();
        let mut clock = obs_clock.into_clock();
        clock.add_sequential(obs.len() as f64 * n as f64 * 2.0);
        Ok((alpha, stats, clock))
    }
}

impl InferTarget for Hmm {
    fn name(&self) -> &str {
        self.name
    }

    fn run_sequential(&self) -> ProgramOutput {
        ProgramOutput::from_floats(self.run_sequential_raw())
    }

    fn run_probe(&self, probe: &Probe) -> Result<ProbeRun, RunError> {
        let (alpha, stats, clock) = self.run(probe)?;
        Ok(ProbeRun {
            output: ProgramOutput::from_floats(alpha),
            stats,
            clock,
        })
    }

    fn probe_summary(&self) -> LoopSummary {
        let (a, b, obs) = self.model();
        let n = self.states;
        let mut heap = Heap::new();
        let cur = heap.alloc(ObjData::F64(vec![1.0 / n as f64; n]));
        let next = heap.alloc(ObjData::zeros_f64(n));
        let body = self.body(&a, &b, obs[0], cur, next);
        summarize_dependences(&mut heap, &mut RangeSpace::new(0, n as u64), body)
    }

    fn loop_spec(&self) -> Option<LoopSpec> {
        // Mirror `probe_summary`'s heap construction so ObjIds line up.
        let n = self.states;
        let mut heap = Heap::new();
        let cur = heap.alloc(ObjData::F64(vec![1.0 / n as f64; n]));
        let next = heap.alloc(ObjData::zeros_f64(n));
        let words = n as u32;
        let mut spec = LoopSpec::new(n as u64, heap.high_water());
        // Iteration s reads the whole previous alpha vector (loop-invariant
        // within a step) and blind-writes its own slot next[s] — injective
        // affine writes, no carried dependences (Table 3: Dep = No).
        let cur_r = spec.region("alpha", vec![cur], words);
        spec.access(
            cur_r,
            Member::At(0),
            Words::Range { lo: 0, hi: words },
            AccessKind::Read,
        );
        let next_r = spec.region("alpha-next", vec![next], words);
        spec.access(
            next_r,
            Member::At(0),
            Words::Affine {
                scale: 1,
                offset: 0,
                width: 1,
            },
            AccessKind::Write,
        );
        Some(spec)
    }

    fn validate(&self, reference: &ProgramOutput, candidate: &ProgramOutput) -> bool {
        reference.approx_eq(candidate, 1e-9)
    }
}

impl Benchmark for Hmm {
    fn loop_weight(&self) -> f64 {
        1.0 // Table 2
    }

    fn chunk_factor(&self) -> usize {
        8
    }

    fn best_config(&self) -> (Model, Option<(String, RedOp)>) {
        (Model::StaleReads, None)
    }

    fn cost_model(&self) -> CostModel {
        CostModel::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alter_infer::{infer, InferConfig};

    fn tiny() -> Hmm {
        Hmm {
            name: "HMM",
            states: 24,
            symbols: 8,
            steps: 6,
            seed: 12,
        }
    }

    #[test]
    fn sequential_alpha_is_a_distribution() {
        let h = tiny();
        let alpha = h.run_sequential_raw();
        let sum: f64 = alpha.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(alpha.iter().all(|p| *p >= 0.0));
    }

    #[test]
    fn parallel_forward_pass_is_exact() {
        let h = tiny();
        let seq = h.run_sequential();
        for model in [Model::Tls, Model::OutOfOrder, Model::StaleReads] {
            let run = h.run_probe(&Probe::new(model, 4, 4)).unwrap();
            assert!(h.validate(&seq, &run.output), "{model}");
            assert_eq!(run.stats.retries(), 0, "{model}");
        }
    }

    #[test]
    fn inference_reports_no_deps_and_all_success() {
        let h = tiny();
        let report = infer(
            &h,
            &InferConfig {
                workers: 4,
                chunk: 4,
                ..Default::default()
            },
        );
        assert!(!report.dep.any());
        assert!(report.tls.is_success());
        assert!(report.out_of_order.is_success());
        assert!(report.stale_reads.is_success());
    }

    #[test]
    fn speedup_is_positive() {
        let h = tiny();
        let (_, _, clock) = h.run(&h.best_probe(4)).unwrap();
        assert!(clock.speedup() > 1.2, "{:.2}", clock.speedup());
    }
}
