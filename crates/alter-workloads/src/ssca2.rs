//! SSCA2 — kernel 1 of the HPCS Scalable Synthetic Compact Applications
//! graph benchmark (via STAMP): constructing the adjacency structure from a
//! generated edge list.
//!
//! Each iteration appends one edge's head to its tail's adjacency object —
//! a read-modify-write of that vertex's allocation. Two iterations conflict
//! exactly when concurrent chunks touch the same vertex. As with Genome,
//! every location read is also written, so StaleReads and OutOfOrder are
//! equally correct and StaleReads wins by skipping read instrumentation
//! (Figure 7). The random input generation step is not timed, matching the
//! paper's footnote.

use crate::common::{rng, Benchmark, Scale};
use alter_analyze::absint::{AccessKind, LoopSpec, Member, Words};
use alter_heap::{Heap, ObjData, ObjId};
use alter_infer::{InferTarget, Model, Probe, ProbeRun, ProgramOutput};
use alter_runtime::{
    summarize_dependences, LoopSummary, RangeSpace, RedOp, RedVars, RunError, RunStats, TxCtx,
};
use alter_sim::{CostModel, SimClock, SimObserver};

// Adjacency object layout: [0] = degree, [1..] = neighbour slots.
const DEG: usize = 0;
const SLOTS: usize = 1;

/// The SSCA2 kernel-1 benchmark.
#[derive(Clone, Debug)]
pub struct Ssca2 {
    name: &'static str,
    vertices: usize,
    edges: usize,
    /// Neighbour capacity per vertex object.
    cap: usize,
    seed: u64,
}

impl Ssca2 {
    /// The benchmark at the given scale (the paper uses problem scales
    /// 18–20, i.e. 2^18–2^20 vertices).
    pub fn new(scale: Scale) -> Self {
        let vertices = match scale {
            Scale::Inference => 4_096,
            Scale::Paper => 16_384,
        };
        Ssca2 {
            name: "SSCA2",
            vertices,
            edges: vertices * 2,
            cap: 24,
            seed: 0x55ca,
        }
    }

    /// Deterministic edge list (uniform endpoints, self-loops excluded).
    pub fn edge_list(&self) -> Vec<(usize, usize)> {
        let mut r = rng(self.seed);
        (0..self.edges)
            .map(|_| loop {
                let u = r.gen_range(0..self.vertices);
                let v = r.gen_range(0..self.vertices);
                if u != v {
                    break (u, v);
                }
            })
            .collect()
    }

    /// Sequential adjacency construction; returns per-vertex sorted
    /// neighbour lists (truncated at capacity like the parallel version).
    pub fn run_sequential_raw(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.vertices];
        for (u, v) in self.edge_list() {
            if adj[u].len() < self.cap {
                adj[u].push(v);
            }
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        adj
    }

    fn digest(adj: &[Vec<usize>]) -> Vec<i64> {
        // Degree plus neighbour checksum per vertex: order-insensitive.
        adj.iter()
            .map(|l| (l.len() as i64) << 32 | (l.iter().sum::<usize>() as i64 & 0xffff_ffff))
            .collect()
    }

    fn body<'a>(
        &self,
        edges: &'a [(usize, usize)],
        adj: &'a [ObjId],
    ) -> impl Fn(&mut TxCtx<'_>, u64) + Sync + 'a {
        let cap = self.cap;
        move |ctx, i| {
            let (u, v) = edges[i as usize];
            ctx.tx.work(32); // endpoint decoding and index arithmetic
            let deg = ctx.tx.read_i64(adj[u], DEG) as usize;
            if deg < cap {
                ctx.tx.write_i64(adj[u], SLOTS + deg, v as i64);
                ctx.tx.write_i64(adj[u], DEG, deg as i64 + 1);
            }
        }
    }

    /// Runs kernel 1 under `probe` (input generation untimed).
    ///
    /// # Errors
    ///
    /// Propagates runtime aborts.
    #[allow(clippy::type_complexity)]
    pub fn run(&self, probe: &Probe) -> Result<(Vec<i64>, RunStats, SimClock), RunError> {
        let edges = self.edge_list();
        let mut heap = Heap::new();
        let mut reds = RedVars::new();
        let adj: Vec<ObjId> = (0..self.vertices)
            .map(|_| heap.alloc(ObjData::zeros_i64(SLOTS + self.cap)))
            .collect();
        let params = probe.exec_params(&reds);
        let model = self.cost_model();
        let mut obs = SimObserver::new(&model, params.workers);
        let body = self.body(&edges, &adj);
        let stats = alter_runtime::run_loop_observed(
            &mut heap,
            &mut reds,
            &mut RangeSpace::new(0, edges.len() as u64),
            &params,
            probe.driver(),
            body,
            &mut obs,
        )?;
        // Read back adjacency (sorted per vertex — commit order may differ).
        let result: Vec<Vec<usize>> = adj
            .iter()
            .map(|id| {
                let words = heap.get(*id).i64s();
                let deg = words[DEG] as usize;
                let mut l: Vec<usize> = words[SLOTS..SLOTS + deg]
                    .iter()
                    .map(|&v| v as usize)
                    .collect();
                l.sort_unstable();
                l
            })
            .collect();
        Ok((Self::digest(&result), stats, obs.into_clock()))
    }
}

impl InferTarget for Ssca2 {
    fn name(&self) -> &str {
        self.name
    }

    fn run_sequential(&self) -> ProgramOutput {
        ProgramOutput::from_ints(Self::digest(&self.run_sequential_raw()))
    }

    fn run_probe(&self, probe: &Probe) -> Result<ProbeRun, RunError> {
        let (digest, stats, clock) = self.run(probe)?;
        Ok(ProbeRun {
            output: ProgramOutput::from_ints(digest),
            stats,
            clock,
        })
    }

    fn probe_summary(&self) -> LoopSummary {
        let edges = self.edge_list();
        let mut heap = Heap::new();
        let adj: Vec<ObjId> = (0..self.vertices)
            .map(|_| heap.alloc(ObjData::zeros_i64(SLOTS + self.cap)))
            .collect();
        let body = self.body(&edges, &adj);
        summarize_dependences(&mut heap, &mut RangeSpace::new(0, edges.len() as u64), body)
    }

    fn loop_spec(&self) -> Option<LoopSpec> {
        // Mirror `probe_summary`'s heap construction so ObjIds line up.
        let words = (SLOTS + self.cap) as u32;
        let mut heap = Heap::new();
        let adj: Vec<ObjId> = (0..self.vertices)
            .map(|_| heap.alloc(ObjData::zeros_i64(SLOTS + self.cap)))
            .collect();
        let mut spec = LoopSpec::new(self.edges as u64, heap.high_water());
        // Each edge read-modify-writes its tail vertex's adjacency object:
        // a degree read, then (below capacity) a slot and degree write —
        // the vertex is data-dependent on the edge list.
        let adj_r = spec.region("adjacency", adj, words);
        spec.access(
            adj_r,
            Member::Some,
            Words::Range { lo: 0, hi: 1 },
            AccessKind::Read,
        );
        spec.access_if(
            adj_r,
            Member::Some,
            Words::Unknown { bound: words },
            AccessKind::Write,
        );
        Some(spec)
    }
}

impl Benchmark for Ssca2 {
    fn loop_weight(&self) -> f64 {
        0.76 // Table 2
    }

    fn chunk_factor(&self) -> usize {
        16 // the paper tunes 64 at scale 20; scaled to our input
    }

    fn best_config(&self) -> (Model, Option<(String, RedOp)>) {
        (Model::StaleReads, None)
    }

    fn cost_model(&self) -> CostModel {
        CostModel::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alter_infer::{infer, InferConfig};

    fn tiny() -> Ssca2 {
        Ssca2 {
            name: "SSCA2",
            vertices: 512,
            edges: 1024,
            cap: 24,
            seed: 7,
        }
    }

    #[test]
    fn sequential_builds_every_edge() {
        let s = tiny();
        let adj = s.run_sequential_raw();
        let total: usize = adj.iter().map(Vec::len).sum();
        assert_eq!(total, 1024, "capacity never saturates at this scale");
    }

    #[test]
    fn stale_and_ooo_build_identical_graphs() {
        let s = tiny();
        let seq = s.run_sequential();
        for model in [Model::OutOfOrder, Model::StaleReads] {
            let (digest, stats, _) = s.run(&Probe::new(model, 4, 8)).unwrap();
            assert_eq!(digest, seq.ints, "{model}");
            assert!(
                stats.retry_rate() < 0.5,
                "{model}: {:.2}",
                stats.retry_rate()
            );
        }
    }

    #[test]
    fn inference_reports_dep_and_successes() {
        let s = tiny();
        let report = infer(
            &s,
            &InferConfig {
                workers: 4,
                chunk: 8,
                ..Default::default()
            },
        );
        assert!(report.dep.any(), "vertex RMW is loop-carried");
        assert!(
            report.out_of_order.is_success(),
            "ooo: {}",
            report.out_of_order
        );
        assert!(
            report.stale_reads.is_success(),
            "stale: {}",
            report.stale_reads
        );
    }

    #[test]
    fn stale_reads_is_fastest_in_simulated_time() {
        let s = tiny();
        let stale = s.run(&Probe::new(Model::StaleReads, 4, 8)).unwrap().2;
        let ooo = s.run(&Probe::new(Model::OutOfOrder, 4, 8)).unwrap().2;
        let tls = s.run(&Probe::new(Model::Tls, 4, 8)).unwrap().2;
        assert!(stale.par_units < ooo.par_units, "stale < ooo");
        assert!(
            ooo.par_units <= tls.par_units * 1.05,
            "ooo <= tls (within noise)"
        );
    }
}
