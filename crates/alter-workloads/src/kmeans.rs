//! K-means — the STAMP clustering benchmark of Figure 2.
//!
//! ```c
//! while (delta > threshold) {
//!   delta = 0.0;
//!   [StaleReads + Reduction(delta, +)]       // or OutOfOrder + Reduction
//!   for (i = 0; i < npoints; i++) {
//!     index = findNearestPoint(feature[i], clusters);
//!     if (membership[i] != index) delta += 1.0;
//!     membership[i] = index;
//!     new_centers_len[index]++;
//!     new_centers[index] += feature[i];
//!   }
//! }
//! ```
//!
//! `feature` lives in shared memory like the original benchmark: one
//! read-only heap object per point, read transactionally each iteration
//! (it is never written, so it can never conflict — but it *does* make the
//! heap big, which is exactly the shape that rewards incremental
//! snapshots: only the membership array, the accumulators, and `delta`
//! are dirtied each round). `membership[i]` is a disjoint per-iteration
//! write; each cluster's accumulator is one heap
//! allocation, so two iterations conflict exactly when concurrent chunks
//! update the same cluster — which is why "the larger the number of
//! clusters to be formed, the fewer the conflicts" (§7.2, Figure 8).
//! `delta` is the reduction variable: without the annotation it is a shared
//! read-modify-write scalar that serializes everything (`h.c.` in Table 3);
//! with `Reduction(delta, +)` only the cluster-accumulator conflicts
//! remain.

use crate::common::{rng, uniform_f64s, Benchmark, Scale};
use alter_analyze::absint::{AccessKind, LoopSpec, Member, Words};
use alter_heap::{Heap, ObjData, ObjId};
use alter_infer::{InferTarget, Model, Probe, ProbeRun, ProgramOutput};
use alter_runtime::{
    summarize_dependences, BoundScalar, LoopSummary, RangeSpace, RedOp, RedVal, RedVars, RunError,
    RunStats, TxCtx,
};
use alter_sim::{CostModel, SimClock, SimObserver};

/// The K-means clustering benchmark.
#[derive(Clone, Debug)]
pub struct KMeans {
    name: &'static str,
    npoints: usize,
    nclusters: usize,
    nfeatures: usize,
    /// Jitter radius around the planted centers; larger values overlap the
    /// clusters, so memberships keep shifting for more rounds and boundary
    /// points land in "foreign" clusters (raising accumulator conflicts).
    jitter: f64,
    /// Stop when fewer than `threshold × npoints` memberships change.
    threshold: f64,
    max_rounds: usize,
    seed: u64,
}

impl KMeans {
    /// The benchmark at a given scale and cluster count (the paper sweeps
    /// 512 vs 1024 clusters at 16k/64k points; we keep the same ratio of
    /// points to clusters).
    pub fn with_clusters(scale: Scale, nclusters: usize) -> Self {
        KMeans {
            name: "K-means",
            npoints: match scale {
                Scale::Inference => nclusters * 16,
                Scale::Paper => nclusters * 64,
            },
            nclusters,
            nfeatures: 8,
            jitter: 3.0,
            threshold: 0.02,
            max_rounds: 30,
            seed: 0x6b6d,
        }
    }

    /// Default configuration for the scale (32 clusters at inference
    /// scale, matching the paper's 16k-points/512-clusters ratio).
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Inference => Self::with_clusters(scale, 64),
            Scale::Paper => Self::with_clusters(scale, 128),
        }
    }

    /// Points clustered around `nclusters` true centers (deterministic).
    pub fn features(&self) -> Vec<Vec<f64>> {
        let mut r = rng(self.seed);
        let centers: Vec<Vec<f64>> = (0..self.nclusters)
            .map(|_| uniform_f64s(&mut r, self.nfeatures, -10.0, 10.0))
            .collect();
        (0..self.npoints)
            .map(|i| {
                let c = &centers[i % self.nclusters];
                // Jitter makes clusters overlap, so memberships keep
                // shifting for several rounds — the regime where the delta
                // convergence test actually matters.
                c.iter()
                    .zip(uniform_f64s(
                        &mut r,
                        self.nfeatures,
                        -self.jitter,
                        self.jitter,
                    ))
                    .map(|(center, jitter)| center + jitter)
                    .collect()
            })
            .collect()
    }

    fn nearest(features: &[f64], centers: &[Vec<f64>]) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (c, center) in centers.iter().enumerate() {
            let d: f64 = features
                .iter()
                .zip(center)
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    }

    /// Plain sequential K-means; returns final memberships and rounds run.
    pub fn run_sequential_raw(&self) -> (Vec<usize>, usize) {
        let features = self.features();
        let mut centers: Vec<Vec<f64>> = features[..self.nclusters].to_vec();
        let mut membership = vec![usize::MAX; self.npoints];
        let mut rounds = 0;
        loop {
            let mut sums = vec![vec![0.0; self.nfeatures]; self.nclusters];
            let mut counts = vec![0usize; self.nclusters];
            let mut delta = 0.0;
            for i in 0..self.npoints {
                let c = Self::nearest(&features[i], &centers);
                if membership[i] != c {
                    delta += 1.0;
                }
                membership[i] = c;
                counts[c] += 1;
                for f in 0..self.nfeatures {
                    sums[c][f] += features[i][f];
                }
            }
            for c in 0..self.nclusters {
                if counts[c] > 0 {
                    for f in 0..self.nfeatures {
                        centers[c][f] = sums[c][f] / counts[c] as f64;
                    }
                }
            }
            rounds += 1;
            if delta / self.npoints as f64 <= self.threshold || rounds >= self.max_rounds {
                break;
            }
        }
        (membership, rounds)
    }

    /// State of the ALTER-parallel version: heap objects per cluster
    /// accumulator (features + count), the membership array, and `delta`.
    fn body<'a>(
        &self,
        feats: &'a [ObjId],
        centers: &'a [Vec<f64>],
        membership: ObjId,
        accs: &'a [ObjId],
        delta: BoundScalar,
    ) -> impl Fn(&mut TxCtx<'_>, u64) + Sync + 'a {
        let nf = self.nfeatures;
        move |ctx, iter| {
            let i = iter as usize;
            // feature[i]: one range read of the point's heap object.
            let fv: Vec<f64> = ctx.tx.with_f64s(feats[i], 0, nf, |s| s.to_vec());
            let c = Self::nearest(&fv, centers);
            ctx.tx.work((centers.len() * nf) as u64);
            if ctx.tx.read_i64(membership, i) != c as i64 {
                delta.add(ctx, 1.0);
            }
            ctx.tx.write_i64(membership, i, c as i64);
            // new_centers_len[c]++ and new_centers[c] += feature[i], as one
            // read-modify-write of the cluster's accumulator object.
            ctx.tx.update_f64s(accs[c], 0, nf + 1, |acc| {
                acc[nf] += 1.0;
                for f in 0..nf {
                    acc[f] += fv[f];
                }
            });
        }
    }

    /// Allocates the read-only per-point feature objects.
    fn alloc_features(&self, heap: &mut Heap, features: &[Vec<f64>]) -> Vec<ObjId> {
        features
            .iter()
            .map(|f| heap.alloc(ObjData::F64(f.clone())))
            .collect()
    }

    /// Runs the full program under `probe`.
    ///
    /// # Errors
    ///
    /// Propagates runtime aborts from any round.
    #[allow(clippy::type_complexity)]
    pub fn run(&self, probe: &Probe) -> Result<(Vec<i64>, usize, RunStats, SimClock), RunError> {
        self.run_with_model(probe, &self.cost_model())
    }

    /// Like [`KMeans::run`] with an explicit cost model — the fine-grained-
    /// locking baseline of Figure 8 reuses the same execution with the
    /// ALTER overheads replaced by per-update lock costs.
    #[allow(clippy::type_complexity)]
    pub fn run_with_model(
        &self,
        probe: &Probe,
        model: &CostModel,
    ) -> Result<(Vec<i64>, usize, RunStats, SimClock), RunError> {
        let features = self.features();
        let mut heap = Heap::new();
        let mut reds = RedVars::new();
        // Feature objects first: the cold read-only bulk of the heap stays
        // on its own snapshot pages, away from the hot state below.
        let feats = self.alloc_features(&mut heap, &features);
        let membership = heap.alloc(ObjData::I64(vec![-1; self.npoints]));
        let accs: Vec<ObjId> = (0..self.nclusters)
            .map(|_| heap.alloc(ObjData::zeros_f64(self.nfeatures + 1)))
            .collect();
        let delta = BoundScalar::declare(&mut heap, &mut reds, "delta", RedVal::F64(0.0));

        let params = probe.exec_params(&reds);
        let was_reduced = !params.reductions.is_empty();
        let mut obs = SimObserver::new(model, params.workers);
        let mut stats = RunStats::default();

        let mut centers: Vec<Vec<f64>> = features[..self.nclusters].to_vec();
        let mut rounds = 0;
        loop {
            delta.seq_set(&mut heap, &mut reds, RedVal::F64(0.0));
            for acc in &accs {
                heap.get_mut(*acc).f64s_mut().fill(0.0);
            }
            let body = self.body(&feats, &centers, membership, &accs, delta);
            let round_stats = alter_runtime::run_loop_observed(
                &mut heap,
                &mut reds,
                &mut RangeSpace::new(0, self.npoints as u64),
                &params,
                probe.driver(),
                body,
                &mut obs,
            )?;
            stats.absorb(&round_stats);
            rounds += 1;

            // Sequential epilogue: recompute centers from accumulators.
            for (c, acc) in accs.iter().enumerate() {
                let data = heap.get(*acc).f64s();
                let count = data[self.nfeatures];
                if count > 0.0 {
                    for f in 0..self.nfeatures {
                        centers[c][f] = data[f] / count;
                    }
                }
            }
            let d = delta
                .seq_get_sync(&mut heap, &mut reds, was_reduced)
                .as_f64();
            if d / self.npoints as f64 <= self.threshold || rounds >= self.max_rounds {
                break;
            }
        }
        let mut clock = obs.into_clock();
        clock.add_sequential(rounds as f64 * (self.nclusters * self.nfeatures) as f64 * 3.0);
        let membership = heap.get(membership).i64s().to_vec();
        Ok((membership, rounds, stats, clock))
    }

    fn cluster_sizes(&self, membership: &[i64]) -> Vec<i64> {
        let mut sizes = vec![0i64; self.nclusters];
        for &m in membership {
            if m >= 0 {
                sizes[m as usize] += 1;
            }
        }
        sizes
    }
}

impl InferTarget for KMeans {
    fn name(&self) -> &str {
        self.name
    }

    fn run_sequential(&self) -> ProgramOutput {
        let (membership, rounds) = self.run_sequential_raw();
        let as_i64: Vec<i64> = membership.iter().map(|&m| m as i64).collect();
        let mut ints = vec![rounds as i64];
        ints.extend(self.cluster_sizes(&as_i64));
        ProgramOutput::from_ints(ints)
    }

    fn run_probe(&self, probe: &Probe) -> Result<ProbeRun, RunError> {
        let (membership, rounds, stats, clock) = self.run(probe)?;
        let mut ints = vec![rounds as i64];
        ints.extend(self.cluster_sizes(&membership));
        Ok(ProbeRun {
            output: ProgramOutput::from_ints(ints),
            stats,
            clock,
        })
    }

    fn probe_summary(&self) -> LoopSummary {
        let features = self.features();
        let mut heap = Heap::new();
        let mut reds = RedVars::new();
        let feats = self.alloc_features(&mut heap, &features);
        let membership = heap.alloc(ObjData::I64(vec![-1; self.npoints]));
        let accs: Vec<ObjId> = (0..self.nclusters)
            .map(|_| heap.alloc(ObjData::zeros_f64(self.nfeatures + 1)))
            .collect();
        let delta = BoundScalar::declare(&mut heap, &mut reds, "delta", RedVal::F64(0.0));
        let centers: Vec<Vec<f64>> = features[..self.nclusters].to_vec();
        let body = self.body(&feats, &centers, membership, &accs, delta);
        let mut s = summarize_dependences(
            &mut heap,
            &mut RangeSpace::new(0, self.npoints as u64),
            body,
        );
        s.label("delta", delta.object());
        s
    }

    fn loop_spec(&self) -> Option<LoopSpec> {
        // Mirror `probe_summary`'s heap construction so ObjIds line up.
        let nf = self.nfeatures as u32;
        let mut heap = Heap::new();
        let mut reds = RedVars::new();
        let feats = self.alloc_features(&mut heap, &self.features());
        let membership = heap.alloc(ObjData::I64(vec![-1; self.npoints]));
        let accs: Vec<ObjId> = (0..self.nclusters)
            .map(|_| heap.alloc(ObjData::zeros_f64(self.nfeatures + 1)))
            .collect();
        let delta = BoundScalar::declare(&mut heap, &mut reds, "delta", RedVal::F64(0.0));
        let mut spec = LoopSpec::new(self.npoints as u64, heap.high_water());
        // Iteration i reads its own feature object and read-writes its own
        // membership slot (both injective); the data-dependent cluster
        // accumulator update and the `delta += 1.0` reduction are the
        // conflict-carrying accesses.
        let feats_r = spec.region("features", feats, nf);
        spec.access(
            feats_r,
            Member::Each,
            Words::Range { lo: 0, hi: nf },
            AccessKind::Read,
        );
        let mem_r = spec.region("membership", vec![membership], self.npoints as u32);
        let own_slot = Words::Affine {
            scale: 1,
            offset: 0,
            width: 1,
        };
        spec.access(mem_r, Member::At(0), own_slot, AccessKind::Read);
        spec.access(mem_r, Member::At(0), own_slot, AccessKind::Write);
        let delta_r = spec.labeled_region("delta", delta.object(), "delta");
        spec.access_if(
            delta_r,
            Member::At(0),
            Words::Range { lo: 0, hi: 1 },
            AccessKind::Reduce(RedOp::Add),
        );
        let accs_r = spec.region("accumulators", accs, nf + 1);
        spec.access(
            accs_r,
            Member::Some,
            Words::Range { lo: 0, hi: nf + 1 },
            AccessKind::Update,
        );
        Some(spec)
    }

    fn reduction_candidates(&self) -> Vec<String> {
        vec!["delta".into()]
    }

    fn validate(&self, reference: &ProgramOutput, candidate: &ProgramOutput) -> bool {
        // First int is the round count: a run that exhausted max_rounds
        // never converged (e.g. a NaN-poisoned delta merge) and is invalid
        // regardless of the final memberships.
        if candidate.ints.first().copied().unwrap_or(0) >= self.max_rounds as i64 {
            return false;
        }
        if reference.ints.len() != candidate.ints.len() {
            return false;
        }
        // Cluster sizes must agree closely; commit order may shuffle a few
        // boundary points between near-equidistant clusters.
        let sizes_r = &reference.ints[1..];
        let sizes_c = &candidate.ints[1..];
        let total: i64 = sizes_r.iter().sum();
        let diff: i64 = sizes_r
            .iter()
            .zip(sizes_c)
            .map(|(a, b)| (a - b).abs())
            .sum();
        diff * 100 <= total * 2 // ≤2% of points moved
    }
}

impl Benchmark for KMeans {
    fn loop_weight(&self) -> f64 {
        0.89 // Table 2
    }

    fn chunk_factor(&self) -> usize {
        4 // Table 4: K-means cf = 4
    }

    fn best_config(&self) -> (Model, Option<(String, RedOp)>) {
        (Model::StaleReads, Some(("delta".into(), RedOp::Add)))
    }

    fn cost_model(&self) -> CostModel {
        CostModel::default() // compute-bound: distance evaluations dominate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alter_infer::{infer, InferConfig};

    fn tiny() -> KMeans {
        KMeans {
            name: "K-means",
            npoints: 512,
            nclusters: 32,
            nfeatures: 4,
            jitter: 4.0,
            threshold: 0.02,
            max_rounds: 20,
            seed: 4,
        }
    }

    #[test]
    fn sequential_clusters_the_planted_data() {
        let km = tiny();
        let (membership, rounds) = km.run_sequential_raw();
        assert!(rounds >= 1);
        // Planted clusters are well separated: every cluster gets points.
        let as_i64: Vec<i64> = membership.iter().map(|&m| m as i64).collect();
        let sizes = km.cluster_sizes(&as_i64);
        assert!(
            sizes.iter().filter(|&&s| s > 0).count() >= 28,
            "most clusters populated"
        );
        assert_eq!(sizes.iter().sum::<i64>(), 512);
    }

    #[test]
    fn stale_reads_with_add_reduction_matches() {
        let km = tiny();
        let seq = km.run_sequential();
        let mut probe = Probe::new(Model::StaleReads, 4, 4);
        probe.reduction = Some(("delta".into(), RedOp::Add));
        let run = km.run_probe(&probe).unwrap();
        assert!(km.validate(&seq, &run.output));
        assert!(
            run.stats.retry_rate() < 0.5,
            "cluster conflicts must be modest: {:.2}",
            run.stats.retry_rate()
        );
    }

    #[test]
    fn unannotated_delta_serializes() {
        let km = tiny();
        let probe = Probe::new(Model::StaleReads, 4, 4);
        let run = km.run_probe(&probe).unwrap();
        assert!(
            run.stats.retry_rate() > 0.5,
            "shared delta must conflict: {:.2}",
            run.stats.retry_rate()
        );
    }

    #[test]
    fn inference_requires_the_reduction() {
        let km = tiny();
        let report = infer(
            &km,
            &InferConfig {
                workers: 4,
                chunk: 4,
                ..Default::default()
            },
        );
        assert!(report.dep.any());
        assert!(
            !report.stale_reads.is_success(),
            "stale alone: {}",
            report.stale_reads
        );
        assert!(!report.out_of_order.is_success());
        let ok = report.successful_reductions();
        assert!(
            ok.iter()
                .any(|r| r.op == RedOp::Add && r.model == Model::StaleReads),
            "StaleReads + Reduction(delta, +) must be valid"
        );
    }

    #[test]
    fn more_clusters_fewer_conflicts() {
        // The Figure 8 effect: conflicts drop as clusters grow.
        let few = KMeans {
            nclusters: 4,
            npoints: 512,
            ..tiny()
        };
        let many = KMeans {
            nclusters: 32,
            npoints: 512,
            ..tiny()
        };
        let mut probe = Probe::new(Model::StaleReads, 4, 4);
        probe.reduction = Some(("delta".into(), RedOp::Add));
        let r_few = few.run_probe(&probe).unwrap();
        let r_many = many.run_probe(&probe).unwrap();
        assert!(
            r_many.stats.retry_rate() < r_few.stats.retry_rate(),
            "{:.3} !< {:.3}",
            r_many.stats.retry_rate(),
            r_few.stats.retry_rate()
        );
    }
}
