//! The paper's test-driven annotation inference (§5) on the K-means loop
//! of Figure 2.
//!
//! ```text
//! cargo run --release --example inference
//! ```
//!
//! ALTER enumerates the candidate annotations for the loop, runs each once
//! (the deterministic runtime makes one run per test sufficient), and
//! reports which preserve the program's output — ending at the paper's
//! suggestion: `[StaleReads + Reduction(delta, +)]`.

use alter::infer::{auto_parallelize, InferConfig};
use alter::workloads::kmeans::KMeans;
use alter::workloads::Scale;

fn main() {
    let km = KMeans::new(Scale::Inference);
    println!("inferring annotations for the K-means main loop ...\n");
    let decision = auto_parallelize(&km, &InferConfig::default());
    let report = &decision.report;

    println!(
        "loop-carried dependences: raw={} waw={} war={}",
        report.dep.raw, report.dep.waw, report.dep.war
    );
    println!("TLS (speculation):        {}", report.tls);
    println!("[OutOfOrder]:             {}", report.out_of_order);
    println!("[StaleReads]:             {}", report.stale_reads);

    if !report.reductions.is_empty() {
        println!("\nreduction search over candidate scalars:");
        for r in &report.reductions {
            println!(
                "  {} + Reduction({}, {})  ->  {}",
                r.model, r.var, r.op, r.outcome
            );
        }
    }

    println!("\nannotations that preserved the output:");
    for a in &report.valid_annotations {
        println!("  {a}");
    }

    match &decision.chosen {
        Some(c) => println!(
            "\nautomatic parallelization (§6) selects: {} at chunk factor {}",
            c.annotation, c.chunk
        ),
        None => println!("\nno annotation validated; the loop stays sequential"),
    }
}
