//! The paper's Figure 1: Gauss-Seidel under `[StaleReads]`.
//!
//! ```text
//! cargo run --release --example gauss_seidel
//! ```
//!
//! Solves `Ax = b` with the iterative method whose inner loop has a tight
//! true-dependence chain, then reports what the paper reports: the solution
//! converges despite the broken dependences, at most a sweep or two late,
//! with zero conflicts, and with a simulated multicore speedup that
//! saturates once the kernel hits the memory-bandwidth ceiling.

use alter::infer::Model;
use alter::workloads::gauss_seidel::GaussSeidel;
use alter::workloads::{Benchmark, Scale};

fn main() {
    for gs in [
        GaussSeidel::dense(Scale::Inference),
        GaussSeidel::sparse(Scale::Inference),
    ] {
        let (x_seq, seq_sweeps) = gs.solve_sequential();

        println!("== {} ==", alter::infer::InferTarget::name(&gs));
        println!("sequential: {seq_sweeps} sweeps");
        for workers in [1, 2, 4, 8] {
            let probe = gs.best_probe(workers);
            assert_eq!(probe.model, Model::StaleReads);
            let (x_par, sweeps, stats, clock) = gs.run(&probe).expect("StaleReads runs");
            let max_diff = x_seq
                .iter()
                .zip(&x_par)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            println!(
                "  {workers} workers: {sweeps} sweeps, {} retries, max |x_seq - x_par| = {max_diff:.2e}, simulated speedup {:.2}x",
                stats.retries(),
                clock.speedup(),
            );
        }
        println!();
    }
}
