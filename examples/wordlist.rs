//! Parallel deduplication over an ALTER collection class — the pattern of
//! the Genome benchmark applied to a word list.
//!
//! ```text
//! cargo run --example wordlist
//! ```
//!
//! A shared `AlterHashSet` deduplicates a stream of words. Every insert
//! reads a bucket and then writes it, so OutOfOrder and StaleReads produce
//! identical results while StaleReads skips read instrumentation entirely;
//! two inserts conflict (and one retries) exactly when concurrent chunks
//! hash into the same bucket.

use alter::collections::AlterHashSet;
use alter::heap::Heap;
use alter::runtime::{Driver, ExecParams, LoopBuilder, RedVars};
use alter::sim::{simulate_loop, CostModel};

fn words() -> Vec<&'static str> {
    let text = "the quick brown fox jumps over the lazy dog while the dog \
                dreams of the quick red fox and the fox of the lazy moon \
                over the brown hill where the quick moon jumps the hill";
    text.split_whitespace().collect()
}

fn key_of(word: &str) -> i64 {
    // FNV-1a over the bytes: a stand-in for interning.
    let mut h: i64 = 0x1125_3715;
    for b in word.bytes() {
        h = (h ^ i64::from(b)).wrapping_mul(0x0100_0193);
    }
    h
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let words = words();
    let keys: Vec<i64> = words.iter().map(|w| key_of(w)).collect();

    let mut heap = Heap::new();
    let set = AlterHashSet::new(&mut heap, 64, 4);

    // Threaded execution for the dedup itself ...
    let params = ExecParams::new(4, 4);
    let stats = LoopBuilder::new(&params).range(0, keys.len() as u64).run(
        &mut heap,
        Driver::threaded(),
        |ctx, i| {
            set.insert(ctx, keys[i as usize]);
        },
    )?;
    let distinct = set.seq_len(&heap);
    println!(
        "{} words, {} distinct ({} transactions, {} retries)",
        words.len(),
        distinct,
        stats.attempts,
        stats.retries()
    );

    // ... and the same loop on the simulated multicore for a speedup
    // estimate (identical committed state, by determinism).
    let mut heap2 = Heap::new();
    let set2 = AlterHashSet::new(&mut heap2, 64, 4);
    let mut reds = RedVars::new();
    let (_, clock) = simulate_loop(
        &mut heap2,
        &mut reds,
        &mut alter::runtime::RangeSpace::new(0, keys.len() as u64),
        &params,
        &CostModel::default(),
        |ctx, i| {
            ctx.tx.work(32);
            set2.insert(ctx, keys[i as usize]);
        },
    )?;
    assert_eq!(
        set2.seq_len(&heap2),
        distinct,
        "deterministic across drivers"
    );
    println!("simulated speedup on 4 cores: {:.2}x", clock.speedup());
    Ok(())
}
