//! Quickstart: parallelize a loop with a breakable dependence.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The loop below is a textbook smoothing recurrence: every iteration reads
//! its neighbours and rewrites its own cell, so it carries RAW dependences
//! and no classical parallelizer will touch it. Under ALTER's `StaleReads`
//! annotation the iterations run as transactions on a memory snapshot:
//! writes are disjoint (never a WAW conflict), reads may be one round
//! stale, and the surrounding convergence loop absorbs the difference.

use alter::heap::{Heap, ObjData};
use alter::runtime::{Annotation, Driver, ExecParams, LoopBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 64usize;
    let source: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
    let mut heap = Heap::new();
    let xs = heap.alloc(ObjData::zeros_f64(n));

    // The annotation a programmer would write above the loop.
    let ann: Annotation = "[StaleReads]".parse()?;
    let params = ExecParams::from_annotation(&ann, /*workers*/ 4, /*chunk*/ 8);

    let mut sweeps = 0;
    loop {
        let before: Vec<f64> = heap.get(xs).f64s().to_vec();
        LoopBuilder::new(&params).range(1, n as u64 - 1).run(
            &mut heap,
            Driver::threaded(),
            |ctx, i| {
                let i = i as usize;
                let (l, r) = (ctx.tx.read_f64(xs, i - 1), ctx.tx.read_f64(xs, i + 1));
                ctx.tx
                    .write_f64(xs, i, 0.25 * l + 0.25 * r + 0.5 * source[i]);
            },
        )?;
        sweeps += 1;
        let change = heap
            .get(xs)
            .f64s()
            .iter()
            .zip(&before)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        if change < 1e-9 || sweeps > 1_000 {
            break;
        }
    }

    println!("converged after {sweeps} sweeps");
    println!("x[30..34] = {:?}", &heap.get(xs).f64s()[30..34]);
    Ok(())
}
