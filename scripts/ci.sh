#!/usr/bin/env bash
# Tier-1 gate: format, lint, build, test — fully offline (the workspace has
# no external dependencies). Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== fmt --check =="
cargo fmt --all --check

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== build --release (warnings are errors) =="
RUSTFLAGS="-D warnings" cargo build --release

echo "== test (workspace) =="
cargo test --workspace --quiet

echo "== alter-lint (isolation sanitizer over all 12 canonical traces) =="
# Records each workload's best-configuration trace with full task_sets
# payloads, replays it through the sanitizer (any isolation-invariant
# violation is a hard failure), and regenerates the static analyzer's
# verdict baseline for the drift check below.
cargo run --release -q -p alter-bench --bin alter-lint -- --analysis ANALYSIS.json
# The baseline writer hand-rolls its JSON, so re-parse it with the strict
# grammar before the drift check consumes it.
cargo run --release -q -p alter-bench --bin alter-check-json -- ANALYSIS.json
if [[ -n "$(git status --porcelain -- ANALYSIS.json)" ]]; then
  echo "error: ANALYSIS.json drifted — the analyzer's dependence/annotation"
  echo "verdicts changed; inspect the diff and re-commit if intended."
  git --no-pager diff -- ANALYSIS.json
  exit 1
fi

echo "== alter-absint (static ⊇ dynamic cross-validation over all 12 specs) =="
# Interprets every workload's declared LoopSpec under the interval × stride
# domain and proves the abstract summary covers the dynamic replay — any
# under-declared access or missed edge is a hard failure — then regenerates
# the static verdict baseline for the drift check below.
cargo run --release -q -p alter-bench --bin alter-absint -- --json STATIC.json
cargo run --release -q -p alter-bench --bin alter-check-json -- STATIC.json
if [[ -n "$(git status --porcelain -- STATIC.json)" ]]; then
  echo "error: STATIC.json drifted — the abstract interpreter's symbolic"
  echo "summaries or static verdicts changed; inspect the diff and"
  echo "re-commit if intended."
  git --no-pager diff -- STATIC.json
  exit 1
fi

echo "== record/replay identity (determinism gate) =="
# Records a journal with full task_sets + profile payloads under the given
# extra flags and re-executes it under its recorded configuration: the
# fresh event stream must be byte-identical. On mismatch alter-replay
# bisects to the first divergent round/event and prints the structured
# diff, which is exactly what we want in a CI log.
record_and_replay() {
  local w=$1 out=$2
  shift 2
  cargo run --release -q -p alter-bench --bin alter-replay -- \
    record "$w" --sets --profile "$@" --out "$out" > /dev/null
  cargo run --release -q -p alter-bench --bin alter-replay -- replay "$out"
}
# Each workload is gated twice: under the lock-step driver and under the
# ticketed pipeline committer (the journal header carries the pipeline
# depth, so the replay reconstructs the same driver).
for w in genome k-means; do
  record_and_replay "$w" "target/$w.journal"
  record_and_replay "$w" "target/$w-pipeline.journal" --pipeline-depth 4
done
# Sharded-heap gate: the journal header carries the shard count, so the
# replay reconstructs the identical sharded layout — and the trace must
# still be byte-identical.
record_and_replay genome target/genome-sharded.journal --shards 16

echo "== alter-check (DPOR schedule-space model checker) =="
# Full check of the two flagship workloads at a raised schedule budget,
# then the 12-workload smoke that regenerates the committed CHECK.json
# baseline (schedules explored, DPOR-pruned, per-workload soundness) for
# the drift check below.
cargo run --release -q -p alter-bench --bin alter-check -- \
  check genome best --max-schedules 1024
cargo run --release -q -p alter-bench --bin alter-check -- \
  check k-means best --max-schedules 1024
cargo run --release -q -p alter-bench --bin alter-check -- \
  check all best --json CHECK.json > /dev/null
# The check writer hand-rolls its JSON, so re-parse it with the strict
# grammar before the drift check consumes it.
cargo run --release -q -p alter-bench --bin alter-check-json -- CHECK.json
if [[ -n "$(git status --porcelain -- CHECK.json)" ]]; then
  echo "error: CHECK.json drifted — the schedule-space exploration counts"
  echo "or a soundness verdict changed; inspect the diff and re-commit if"
  echo "intended."
  git --no-pager diff -- CHECK.json
  exit 1
fi
# The checker must also fail when it should: k-means under DOALL is
# deliberately unsound, and the dumped counterexample pair must diverge
# under the replay diff bisector (both commands exit 1).
if cargo run --release -q -p alter-bench --bin alter-check -- \
  check k-means doall --cex target/kmeans-doall > /dev/null; then
  echo "error: k-means under DOALL must be schedule-unsound"
  exit 1
fi
if cargo run --release -q -p alter-bench --bin alter-replay -- \
  diff target/kmeans-doall-expected.journal \
  target/kmeans-doall-actual.journal > /dev/null; then
  echo "error: counterexample journals must diverge under alter-replay diff"
  exit 1
fi

echo "== phase-profile baseline (PROFILE.json drift check) =="
# Regenerates the per-workload phase-cost baseline (pure cost units, no
# wall-clock) and fails on any drift from the committed file.
cargo run --release -q -p alter-bench --bin alter-replay -- \
  profile all --json PROFILE.json > /dev/null
# The profile writer hand-rolls its JSON, so re-parse the regenerated file
# with the strict grammar before the drift check consumes it.
cargo run --release -q -p alter-bench --bin alter-check-json -- PROFILE.json
if [[ -n "$(git status --porcelain -- PROFILE.json)" ]]; then
  echo "error: PROFILE.json drifted — the deterministic per-phase cost"
  echo "profile changed; inspect the diff and re-commit if intended."
  git --no-pager diff -- PROFILE.json
  exit 1
fi

echo "== bench smoke (deterministic A/B counters) =="
scripts/bench.sh --smoke
# `git status --porcelain` (not `git diff --quiet`) so a deleted or
# never-committed BENCH_runtime.json counts as drift too.
if [[ -n "$(git status --porcelain -- BENCH_runtime.json)" ]]; then
  echo "error: BENCH_runtime.json drifted — the runtime's deterministic"
  echo "work profile changed; inspect the diff and re-commit if intended."
  git --no-pager diff -- BENCH_runtime.json
  exit 1
fi

echo "tier-1 gate: OK"
