#!/usr/bin/env bash
# Tier-1 gate: format, lint, build, test — fully offline (the workspace has
# no external dependencies). Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== fmt --check =="
cargo fmt --all --check

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== build --release =="
cargo build --release

echo "== test (workspace) =="
cargo test --workspace --quiet

echo "tier-1 gate: OK"
