#!/usr/bin/env bash
# Tier-1 gate: format, lint, build, test — fully offline (the workspace has
# no external dependencies). Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== fmt --check =="
cargo fmt --all --check

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== build --release =="
cargo build --release

echo "== test (workspace) =="
cargo test --workspace --quiet

echo "== bench smoke (deterministic A/B counters) =="
scripts/bench.sh --smoke
# `git status --porcelain` (not `git diff --quiet`) so a deleted or
# never-committed BENCH_runtime.json counts as drift too.
if [[ -n "$(git status --porcelain -- BENCH_runtime.json)" ]]; then
  echo "error: BENCH_runtime.json drifted — the runtime's deterministic"
  echo "work profile changed; inspect the diff and re-commit if intended."
  git --no-pager diff -- BENCH_runtime.json
  exit 1
fi

echo "tier-1 gate: OK"
