#!/usr/bin/env bash
# Tier-1 gate: format, lint, build, test — fully offline (the workspace has
# no external dependencies). Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== fmt --check =="
cargo fmt --all --check

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== build --release =="
cargo build --release

echo "== test (workspace) =="
cargo test --workspace --quiet

echo "== alter-lint (isolation sanitizer over all 12 canonical traces) =="
# Records each workload's best-configuration trace with full task_sets
# payloads, replays it through the sanitizer (any isolation-invariant
# violation is a hard failure), and regenerates the static analyzer's
# verdict baseline for the drift check below.
cargo run --release -q -p alter-bench --bin alter-lint -- --analysis ANALYSIS.json
if [[ -n "$(git status --porcelain -- ANALYSIS.json)" ]]; then
  echo "error: ANALYSIS.json drifted — the analyzer's dependence/annotation"
  echo "verdicts changed; inspect the diff and re-commit if intended."
  git --no-pager diff -- ANALYSIS.json
  exit 1
fi

echo "== record/replay identity (determinism gate) =="
# Records a journal for two workloads and re-executes each under its
# recorded configuration: the fresh event stream must be byte-identical.
# On mismatch alter-replay bisects to the first divergent round/event and
# prints the structured diff, which is exactly what we want in a CI log.
# Each workload is gated twice: under the lock-step driver and under the
# ticketed pipeline committer (the journal header carries the pipeline
# depth, so the replay reconstructs the same driver).
for w in genome k-means; do
  cargo run --release -q -p alter-bench --bin alter-replay -- \
    record "$w" --sets --profile --out "target/$w.journal" > /dev/null
  cargo run --release -q -p alter-bench --bin alter-replay -- \
    replay "target/$w.journal"
  cargo run --release -q -p alter-bench --bin alter-replay -- \
    record "$w" --sets --profile --pipeline-depth 4 \
    --out "target/$w-pipeline.journal" > /dev/null
  cargo run --release -q -p alter-bench --bin alter-replay -- \
    replay "target/$w-pipeline.journal"
done
# Sharded-heap gate: record genome under a 16-shard heap and replay it (the
# journal header carries the shard count, so the replay reconstructs the
# identical sharded layout — and the trace must still be byte-identical).
cargo run --release -q -p alter-bench --bin alter-replay -- \
  record genome --sets --profile --shards 16 \
  --out target/genome-sharded.journal > /dev/null
cargo run --release -q -p alter-bench --bin alter-replay -- \
  replay target/genome-sharded.journal

echo "== phase-profile baseline (PROFILE.json drift check) =="
# Regenerates the per-workload phase-cost baseline (pure cost units, no
# wall-clock) and fails on any drift from the committed file.
cargo run --release -q -p alter-bench --bin alter-replay -- \
  profile all --json PROFILE.json > /dev/null
# The profile writer hand-rolls its JSON, so re-parse the regenerated file
# with the strict grammar before the drift check consumes it.
cargo run --release -q -p alter-bench --bin alter-check-json -- PROFILE.json
if [[ -n "$(git status --porcelain -- PROFILE.json)" ]]; then
  echo "error: PROFILE.json drifted — the deterministic per-phase cost"
  echo "profile changed; inspect the diff and re-commit if intended."
  git --no-pager diff -- PROFILE.json
  exit 1
fi

echo "== bench smoke (deterministic A/B counters) =="
scripts/bench.sh --smoke
# `git status --porcelain` (not `git diff --quiet`) so a deleted or
# never-committed BENCH_runtime.json counts as drift too.
if [[ -n "$(git status --porcelain -- BENCH_runtime.json)" ]]; then
  echo "error: BENCH_runtime.json drifted — the runtime's deterministic"
  echo "work profile changed; inspect the diff and re-commit if intended."
  git --no-pager diff -- BENCH_runtime.json
  exit 1
fi

echo "tier-1 gate: OK"
