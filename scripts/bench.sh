#!/usr/bin/env bash
# Runtime micro-benchmarks: the primitive-cost benchmarks plus the
# validation fast-path A/B bench, which regenerates BENCH_runtime.json at
# the repo root. Everything in the JSON is a deterministic counter (cost
# units, validate words, exact-scan words, trace hashes) — no wall-clock —
# so the file is stable across machines and is checked in; a diff after
# running this script means the runtime's work profile actually changed.
#
# Usage: scripts/bench.sh [--smoke]
#   --smoke   validation bench only (the deterministic part CI runs)
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

smoke=false
if [[ "${1:-}" == "--smoke" ]]; then
  smoke=true
fi

if ! $smoke; then
  echo "== runtime_micro (wall-clock, informational) =="
  cargo bench -p alter-bench --bench runtime_micro
  echo
fi

# cargo runs bench binaries from the package directory, so hand the bench
# an absolute path.
echo "== validation fast-path A/B (regenerates BENCH_runtime.json) =="
cargo bench -p alter-bench --bench validation -- --json "$PWD/BENCH_runtime.json"

echo
echo "BENCH_runtime.json:"
cat BENCH_runtime.json
