#!/usr/bin/env bash
# Runtime micro-benchmarks: the primitive-cost benchmarks plus the three
# deterministic benches (validation fast path, round-overhead machinery,
# phase profiler), which together regenerate BENCH_runtime.json at the repo
# root. Everything in the JSON is a deterministic counter (cost units,
# validate words, exact-scan words, snapshot slots copied, trace hashes) —
# no wall-clock — so the file is stable across machines and is checked in;
# a diff after running this script means the runtime's work profile
# actually changed.
#
# Usage: scripts/bench.sh [--smoke]
#   --smoke   deterministic A/B benches only (the part CI runs)
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

smoke=false
if [[ "${1:-}" == "--smoke" ]]; then
  smoke=true
fi

if ! $smoke; then
  echo "== runtime_micro (wall-clock, informational) =="
  cargo bench -p alter-bench --bench runtime_micro
  echo
fi

# cargo runs bench binaries from the package directory, so hand the benches
# absolute paths.
mkdir -p target
echo "== validation fast-path A/B =="
cargo bench -p alter-bench --bench validation -- --json "$PWD/target/bench-validation.json"
echo
echo "== round-overhead A/B (snapshots + worker pool) =="
cargo bench -p alter-bench --bench round_overhead -- --json "$PWD/target/bench-round-overhead.json"
echo
echo "== phase profiler (per-phase cost units, worker sweep) =="
cargo bench -p alter-bench --bench phases -- --json "$PWD/target/bench-phases.json"
echo
echo "== pipelined committer A/B (stall units vs barrier) =="
# ALTER_BENCH_WALL=1 adds an informational wall-clock column to the console
# output; the JSON artifact stays pure cost units either way.
cargo bench -p alter-bench --bench pipeline -- --json "$PWD/target/bench-pipeline.json"
echo
echo "== sharded heap A/B (16 shards vs unsharded) =="
# ALTER_BENCH_WALL_SCALING=1 switches this bench to a Table-3-shaped
# wall-clock speedup table (threaded runs at 1/2/4/8 workers) instead;
# that mode is informational only and writes no JSON.
cargo bench -p alter-bench --bench sharding -- --json "$PWD/target/bench-sharding.json"
echo
echo "== DPOR model checker (schedules explored vs naive, pruning gate) =="
cargo bench -p alter-bench --bench check -- --json "$PWD/target/bench-check.json"
echo
echo "== static analyzer probe economics (skips >= 10 gate) =="
cargo bench -p alter-bench --bench absint -- --json "$PWD/target/bench-absint.json"

# Merge the deterministic summaries into the checked-in profile.
{
  printf '{\n"validation":\n'
  cat target/bench-validation.json
  printf ',\n"round_overhead":\n'
  cat target/bench-round-overhead.json
  printf ',\n"phases":\n'
  cat target/bench-phases.json
  printf ',\n"pipeline":\n'
  cat target/bench-pipeline.json
  printf ',\n"sharding":\n'
  cat target/bench-sharding.json
  printf ',\n"check":\n'
  cat target/bench-check.json
  printf ',\n"absint":\n'
  cat target/bench-absint.json
  printf '}\n'
} > BENCH_runtime.json

# The printf/cat splice above fails silently if a bench ever changes its
# output shape, so re-parse the merged file with a strict JSON grammar and
# fail the script (set -e) before anyone consumes a corrupt profile.
echo
echo "== validate merged profile =="
cargo run -q -p alter-bench --bin alter-check-json -- BENCH_runtime.json

echo
echo "BENCH_runtime.json:"
cat BENCH_runtime.json
